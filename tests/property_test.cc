/**
 * @file
 * Parameterised property tests: invariants that must hold across the
 * whole configuration space (policies x loads x seeds), exercised with
 * TEST_P sweeps on the full end-to-end rig.
 */

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "cluster/dispatch.hh"
#include "harness/cluster.hh"
#include "harness/experiment.hh"
#include "sim/rng.hh"

namespace nmapsim {
namespace {

using PolicyLoadSeed = std::tuple<std::string, LoadLevel, unsigned>;

class RigInvariants
    : public ::testing::TestWithParam<PolicyLoadSeed>
{
  protected:
    ExperimentResult
    runShort()
    {
        auto [policy, load, seed] = GetParam();
        ExperimentConfig cfg;
        cfg.app = AppProfile::memcached();
        cfg.freqPolicy = policy;
        cfg.load = load;
        cfg.seed = seed;
        cfg.warmup = milliseconds(50);
        cfg.duration = milliseconds(200);
        // Fixed NMAP thresholds keep the sweep cheap (no profiling
        // sub-run per case).
        cfg.params.set("nmap.ni_th", 14.0);
        cfg.params.set("nmap.cu_th", 0.5);
        return Experiment(cfg).run();
    }
};

TEST_P(RigInvariants, ConservationAndSanity)
{
    ExperimentResult r = runShort();

    // Packet conservation: no drops, nearly everything answered.
    // Exception: powersave pins Pmin, which genuinely cannot sustain
    // the high load — its backlog grows without bound by design.
    auto [policy, load, seed] = GetParam();
    EXPECT_EQ(r.nicDrops, 0u);
    EXPECT_GE(r.requestsSent, r.responsesReceived);
    if (!(policy == "powersave" &&
          load == LoadLevel::kHigh)) {
        EXPECT_GT(r.responsesReceived, r.requestsSent * 9 / 10);
    }

    // Latency is physical: at least one wire round trip.
    EXPECT_GE(r.p50, microseconds(10));
    EXPECT_GE(r.p99, r.p50);
    EXPECT_GE(r.maxLatency, r.p99);
    EXPECT_GE(r.meanLatency, 0.0);

    // Energy and power are positive and bounded by the package's
    // physical envelope (8 cores x ~11 W + uncore).
    EXPECT_GT(r.energyJoules, 0.0);
    EXPECT_GT(r.avgPowerWatts, 1.0);
    EXPECT_LT(r.avgPowerWatts, 120.0);

    // Busy fraction is a fraction.
    EXPECT_GE(r.busyFraction, 0.0);
    EXPECT_LE(r.busyFraction, 1.0);

    // Mode counters only move when traffic exists.
    EXPECT_GT(r.pktsIntrMode + r.pktsPollMode, 0u);

    // Conservation: responses + drops never exceed requests, and the
    // NAPI mode counters partition exactly the packets the OS pulled
    // off the NIC (Rx harvests + Tx completions).
    EXPECT_GE(r.requestsSent, r.responsesReceived + r.nicDrops);
    EXPECT_EQ(r.pktsIntrMode + r.pktsPollMode,
              r.nicRxHarvested + r.nicTxConsumed);
}

INSTANTIATE_TEST_SUITE_P(
    PolicySweep, RigInvariants,
    ::testing::Combine(
        ::testing::Values("performance",
                          "powersave", "ondemand",
                          "conservative",
                          "intel_powersave", "NMAP",
                          "NMAP-simpl",
                          "NMAP-adaptive",
                          "NMAP-chipwide", "NCAP",
                          "NCAP-menu", "Parties"),
        ::testing::Values(LoadLevel::kLow, LoadLevel::kHigh),
        ::testing::Values(3u)),
    [](const ::testing::TestParamInfo<PolicyLoadSeed> &param_info) {
        std::string name =
            std::get<0>(param_info.param) + "_" +
            loadLevelName(std::get<1>(param_info.param)) + "_s" +
            std::to_string(std::get<2>(param_info.param));
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

class IdleInvariants : public ::testing::TestWithParam<std::string>
{
};

TEST_P(IdleInvariants, SleepPolicyKeepsSloMachineryIntact)
{
    ExperimentConfig cfg;
    cfg.app = AppProfile::memcached();
    cfg.freqPolicy = "performance";
    cfg.idlePolicy = GetParam();
    cfg.load = LoadLevel::kMed;
    cfg.warmup = milliseconds(50);
    cfg.duration = milliseconds(200);
    ExperimentResult r = Experiment(cfg).run();

    EXPECT_EQ(r.nicDrops, 0u);
    EXPECT_GT(r.responsesReceived, 0u);
    // Section 5.2: sleep policy choices do not blow up tail latency at
    // millisecond SLOs.
    EXPECT_LT(r.p99, 4 * cfg.app.slo);

    if (GetParam() == "disable") {
        EXPECT_EQ(r.cc6Wakes, 0u);
        EXPECT_EQ(r.cc1Wakes, 0u);
    }
    if (GetParam() == "c6only") {
        EXPECT_EQ(r.cc1Wakes, 0u);
        EXPECT_GT(r.cc6Wakes, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    SleepSweep, IdleInvariants,
    ::testing::Values("menu", "disable",
                      "c6only", "teo"),
    [](const ::testing::TestParamInfo<std::string> &param_info) {
        return param_info.param;
    });

using ModeIdle = std::tuple<std::string, std::string>;

class DataplaneConservation
    : public ::testing::TestWithParam<ModeIdle>
{
};

/**
 * The packet-conservation identity is dataplane-agnostic: whether NAPI
 * or the bypass poll loop pulls descriptors off the NIC, and whatever
 * the idle governor does to the (poll) cores in between, interrupt-mode
 * plus polling-mode packets is exactly the harvested work. Bypass adds
 * the stronger half: the interrupt-mode counter never moves.
 */
TEST_P(DataplaneConservation, HoldsAcrossModesAndIdlePolicies)
{
    auto [mode, idle] = GetParam();

    ExperimentConfig cfg;
    cfg.app = AppProfile::memcached();
    cfg.freqPolicy = "ondemand";
    cfg.idlePolicy = idle;
    cfg.load = LoadLevel::kMed;
    cfg.warmup = milliseconds(30);
    cfg.duration = milliseconds(150);
    if (mode == "bypass") {
        cfg.params.set("dataplane.mode", "bypass");
        // Metronome with armed wakeups actually sleeps the poll core,
        // so the idle governor under test runs on it too.
        cfg.params.set("dataplane.policy", "metronome");
        cfg.params.set("dataplane.sleep_armed_irq", "true");
    }
    ExperimentResult r = Experiment(cfg).run();

    EXPECT_GT(r.responsesReceived, 0u);
    EXPECT_GE(r.requestsSent, r.responsesReceived + r.nicDrops);
    EXPECT_EQ(r.pktsIntrMode + r.pktsPollMode,
              r.nicRxHarvested + r.nicTxConsumed);
    if (mode == "bypass") {
        EXPECT_EQ(r.pktsIntrMode, 0u);
        EXPECT_EQ(r.ksoftirqdWakes, 0u);
        EXPECT_GT(r.bypassPollLoops, 0u);
    } else {
        EXPECT_EQ(r.bypassPollLoops, 0u);
        EXPECT_EQ(r.bypassSleeps, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ModeSweep, DataplaneConservation,
    ::testing::Combine(::testing::Values("napi", "bypass"),
                       ::testing::Values("menu", "disable",
                                         "c6only", "teo")),
    [](const ::testing::TestParamInfo<ModeIdle> &param_info) {
        return std::get<0>(param_info.param) + "_" +
               std::get<1>(param_info.param);
    });

class SeedStability : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SeedStability, NmapMeetsSloAtHighLoadAcrossSeeds)
{
    ExperimentConfig cfg;
    cfg.app = AppProfile::memcached();
    cfg.freqPolicy = "NMAP";
    cfg.load = LoadLevel::kHigh;
    cfg.seed = GetParam();
    cfg.warmup = milliseconds(100);
    cfg.duration = milliseconds(400);
    cfg.params.set("nmap.ni_th", 14.0);
    cfg.params.set("nmap.cu_th", 0.5);
    ExperimentResult r = Experiment(cfg).run();
    // The paper's headline: NMAP keeps P99 near the SLO at high load
    // (small seed-to-seed jitter allowed).
    EXPECT_LT(r.p99, cfg.app.slo * 5 / 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedStability,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

class PacketConservation : public ::testing::TestWithParam<unsigned>
{
};

/**
 * Conservation must hold for *randomised* configurations, not just the
 * curated policy grid: derive a config from the seed (policy, load,
 * burst height, connection skew, core count) and check the packet
 * accounting identities end to end.
 */
TEST_P(PacketConservation, HoldsForRandomConfigs)
{
    const unsigned seed = GetParam();
    Rng rng(seed);

    const std::string policies[] = {
        "performance", "ondemand", "NMAP",
        "NMAP-simpl",  "NCAP",     "Parties",
    };
    const LoadLevel loads[] = {LoadLevel::kLow, LoadLevel::kMed,
                               LoadLevel::kHigh};

    ExperimentConfig cfg;
    cfg.app = rng.bernoulli(0.5) ? AppProfile::memcached()
                                 : AppProfile::nginx();
    cfg.freqPolicy = policies[rng.uniformInt(0, 5)];
    cfg.load = loads[rng.uniformInt(0, 2)];
    cfg.numCores = static_cast<int>(rng.uniformInt(2, 8));
    cfg.connectionSkew = rng.uniform(0.0, 1.0);
    cfg.rpsOverride = cfg.app.level(cfg.load).rps *
                      rng.uniform(0.5, 1.2);
    cfg.seed = seed;
    cfg.warmup = milliseconds(30);
    cfg.duration = milliseconds(150);
    cfg.params.set("nmap.ni_th", 14.0);
    cfg.params.set("nmap.cu_th", 0.5);
    ExperimentResult r = Experiment(cfg).run();

    // Client-side conservation: the server cannot answer requests that
    // were never sent, and drops are a subset of what was sent.
    EXPECT_GE(r.requestsSent, r.responsesReceived + r.nicDrops);

    // OS-side conservation: interrupt-mode plus polling-mode packets
    // is exactly the work NAPI took from the NIC, nothing more or
    // less, whatever the policy, skew or core count.
    EXPECT_EQ(r.pktsIntrMode + r.pktsPollMode,
              r.nicRxHarvested + r.nicTxConsumed);
    EXPECT_GT(r.pktsIntrMode + r.pktsPollMode, 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, PacketConservation,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u,
                                           66u));

class LossConservation : public ::testing::TestWithParam<unsigned>
{
};

/**
 * With injected wire loss and client retries, the fire-and-forget
 * identity becomes exact bookkeeping: every request the client sent is
 * answered, timed out, or still in flight — nothing vanishes, however
 * many transmissions the loss ate.
 */
TEST_P(LossConservation, SentEqualsAnsweredPlusTimedOutPlusInFlight)
{
    const unsigned seed = GetParam();
    Rng rng(seed);

    ExperimentConfig cfg;
    cfg.app = AppProfile::memcached();
    cfg.freqPolicy = rng.bernoulli(0.5) ? "ondemand" : "performance";
    cfg.load = LoadLevel::kMed;
    cfg.seed = seed;
    cfg.warmup = milliseconds(30);
    cfg.duration = milliseconds(150);
    cfg.params.set("fault.wire_loss",
                   PolicyParams::formatDouble(rng.uniform(0.01, 0.1)));
    cfg.params.setTick("client.timeout", milliseconds(2));
    cfg.params.set("client.retries", 3);
    ExperimentResult r = Experiment(cfg).run();

    // The loss actually bit, and retries actually fought back.
    EXPECT_GT(r.faultPacketsLost, 0u);
    EXPECT_GT(r.retransmits, 0u);

    // Exact conservation at the instant the run ended.
    EXPECT_EQ(r.requestsSent, r.responsesReceived +
                                  r.requestsTimedOut +
                                  r.requestsInFlight);
    EXPECT_LE(r.availability, 1.0);
    EXPECT_GT(r.availability, 0.5);
}

INSTANTIATE_TEST_SUITE_P(LossSeeds, LossConservation,
                         ::testing::Values(7u, 8u, 9u));

class BacklogConservation : public ::testing::TestWithParam<unsigned>
{
};

/**
 * Overload sweep for the pooled engine: driving the rig well past
 * capacity piles requests into the per-core socket rings and packets
 * into the NIC rx rings, forcing ring wraparound and growth on the
 * steady-state path. The conservation identities must survive that
 * churn, and a rerun must reproduce the run exactly — a ring that
 * mis-wraps or leaks an old occupant shows up here as a lost or
 * duplicated packet, not just a perf artefact.
 */
TEST_P(BacklogConservation, RingGrowthPreservesAccounting)
{
    const unsigned seed = GetParam();
    Rng rng(seed);

    ExperimentConfig cfg;
    cfg.app = AppProfile::memcached();
    cfg.freqPolicy = rng.bernoulli(0.5) ? "powersave" : "ondemand";
    cfg.load = LoadLevel::kHigh;
    // 2-4x the high-load rate: guaranteed sustained backlog.
    cfg.rpsOverride = cfg.app.level(cfg.load).rps *
                      rng.uniform(2.0, 4.0);
    cfg.numCores = static_cast<int>(rng.uniformInt(2, 4));
    cfg.seed = seed;
    cfg.warmup = milliseconds(20);
    cfg.duration = milliseconds(80);
    ExperimentResult r = Experiment(cfg).run();

    // The backlog actually built up (overload did its job)...
    EXPECT_LT(r.responsesReceived, r.requestsSent);
    // ...yet nothing was lost or double-counted on the way through
    // the rings.
    EXPECT_GE(r.requestsSent, r.responsesReceived + r.nicDrops);
    EXPECT_EQ(r.pktsIntrMode + r.pktsPollMode,
              r.nicRxHarvested + r.nicTxConsumed);

    // And the pooled engine is still deterministic under pressure.
    ExperimentResult again = Experiment(cfg).run();
    EXPECT_EQ(r.requestsSent, again.requestsSent);
    EXPECT_EQ(r.responsesReceived, again.responsesReceived);
    EXPECT_EQ(r.pktsIntrMode, again.pktsIntrMode);
    EXPECT_EQ(r.pktsPollMode, again.pktsPollMode);
    EXPECT_EQ(r.energyJoules, again.energyJoules);
}

INSTANTIATE_TEST_SUITE_P(OverloadSeeds, BacklogConservation,
                         ::testing::Values(101u, 102u, 103u));

/** Every registered dispatch policy, so a newly registered policy is
 *  automatically swept. */
std::vector<std::string>
allDispatchNames()
{
    ensureBuiltinDispatchPolicies();
    return DispatchRegistry::instance().names();
}

using DispatchHostsSeed = std::tuple<std::string, int, unsigned>;

class ClusterConservation
    : public ::testing::TestWithParam<DispatchHostsSeed>
{
};

/**
 * The single-host conservation identities must survive the cluster
 * topology: with unbounded queues and a drain window, every request a
 * client sent comes back through the switch, whatever the dispatch
 * policy, host count or seed — and the switch's own forward/return
 * counters match the client totals exactly.
 */
TEST_P(ClusterConservation, HoldsAcrossDispatchAndHostCount)
{
    auto [dispatch, hosts, seed] = GetParam();

    ClusterConfig cfg;
    cfg.base.app = AppProfile::memcached();
    cfg.base.load = LoadLevel::kMed;
    cfg.base.freqPolicy = "ondemand";
    cfg.base.seed = seed;
    cfg.base.warmup = milliseconds(5);
    cfg.base.duration = milliseconds(20);
    cfg.numHosts = hosts;
    cfg.dispatch = dispatch;
    cfg.clientGroups = hosts > 1 ? 2 : 1;
    cfg.drain = milliseconds(10);
    ClusterResult r = ClusterExperiment(cfg).run();

    EXPECT_GT(r.requestsSent, 0u);
    EXPECT_EQ(r.responsesReceived, r.requestsSent);
    EXPECT_EQ(r.requestsForwarded, r.requestsSent);
    EXPECT_EQ(r.responsesReturned, r.requestsSent);
    EXPECT_EQ(r.switchPortDrops, 0u);
    EXPECT_EQ(r.hostNicDrops, 0u);
    EXPECT_EQ(r.strayResponses, 0u);

    std::uint64_t served = 0;
    std::uint64_t modes = 0;
    for (const ClusterHostResult &host : r.hosts) {
        served += host.served;
        modes += host.pktsIntrMode + host.pktsPollMode;
        EXPECT_EQ(host.nicDrops, 0u);
    }
    // Tap attribution partitions the responses exactly.
    EXPECT_EQ(served, r.requestsSent);
    // Some host processed packets in some NAPI mode.
    EXPECT_GT(modes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    DispatchSweep, ClusterConservation,
    ::testing::Combine(::testing::ValuesIn(allDispatchNames()),
                       ::testing::Values(1, 3),
                       ::testing::Values(17u)),
    [](const ::testing::TestParamInfo<DispatchHostsSeed> &param_info) {
        std::string name = std::get<0>(param_info.param) + "_h" +
                           std::to_string(std::get<1>(param_info.param)) +
                           "_s" +
                           std::to_string(std::get<2>(param_info.param));
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

using DepthDispatchSeed = std::tuple<int, std::string, unsigned>;

class ChainConservation
    : public ::testing::TestWithParam<DepthDispatchSeed>
{
};

/**
 * Chain-wide packet conservation: in an N-tier topology every request
 * traverses every tier exactly once, so with unbounded queues and a
 * drain window the hop counters are exact multiples of the client
 * totals — injected == replied, forwards == injected x (N-1), switch
 * dispatches == injected x N — whatever the chain depth, dispatch
 * policy or seed. The byte-class split must partition exactly too.
 */
TEST_P(ChainConservation, EveryHopAccountsExactly)
{
    auto [depth, dispatch, seed] = GetParam();

    ClusterConfig cfg;
    cfg.base.app = AppProfile::memcached();
    cfg.base.load = LoadLevel::kMed;
    cfg.base.freqPolicy = "ondemand";
    cfg.base.seed = seed;
    cfg.base.warmup = milliseconds(5);
    cfg.base.duration = milliseconds(20);
    cfg.dispatch = dispatch;
    cfg.drain = milliseconds(20);
    cfg.base.params.set("topology.tiers", depth);
    cfg.base.params.set("topology.tier1.hosts", 2); // fan the middle
    ClusterResult r = ClusterExperiment(cfg).run();

    const auto sent = r.requestsSent;
    const auto hops = static_cast<std::uint64_t>(depth);
    EXPECT_GT(sent, 0u);
    EXPECT_EQ(r.responsesReceived, sent);
    EXPECT_EQ(r.eastWestForwards, sent * (hops - 1));
    EXPECT_EQ(r.requestsForwarded, sent * hops);
    EXPECT_EQ(r.responsesReturned, sent);
    EXPECT_EQ(r.switchPortDrops, 0u);
    EXPECT_EQ(r.hostNicDrops, 0u);
    EXPECT_EQ(r.strayResponses, 0u);

    // Byte-class accounting partitions exactly: goodput is response
    // payload only, east-west is the forwards, nothing was control.
    EXPECT_EQ(r.goodputBytes,
              sent * cfg.base.app.responseBytes);
    EXPECT_EQ(r.eastWestBytes,
              r.eastWestForwards * cfg.base.app.requestBytes);
    EXPECT_EQ(r.controlBytes, 0u);

    ASSERT_EQ(r.tiers.size(), static_cast<std::size_t>(depth));
    for (const ClusterTierResult &tier : r.tiers) {
        const bool last = tier.tier == depth - 1;
        // Whole-run forward counters are exact; hop-latency
        // completions cover the measurement window only.
        EXPECT_EQ(tier.forwards, last ? 0u : sent);
        EXPECT_GT(tier.completions, 0u);
        EXPECT_LE(tier.completions, sent);
        EXPECT_GT(tier.hopP99, 0);
        EXPECT_GE(tier.hopP99, tier.hopP50);
        EXPECT_GE(tier.p99Share, 0.0);
        EXPECT_LE(tier.p99Share, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ChainSweep, ChainConservation,
    ::testing::Combine(::testing::Values(2, 3, 4),
                       ::testing::Values("round-robin",
                                         "least-outstanding"),
                       ::testing::Values(23u)),
    [](const ::testing::TestParamInfo<DepthDispatchSeed> &param_info) {
        std::string name =
            "d" + std::to_string(std::get<0>(param_info.param)) + "_" +
            std::get<1>(param_info.param) + "_s" +
            std::to_string(std::get<2>(param_info.param));
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

/**
 * With seeded loss on the access links of a 3-tier chain and client
 * retries, the fire-and-forget identity stays exact bookkeeping
 * across all hops: every injected request is replied, timed out, or
 * still in flight — a forward the loss ate mid-chain surfaces as a
 * client timeout, never as a vanished packet.
 */
TEST(ChainLossConservation, MidChainLossAccountsExactly)
{
    ClusterConfig cfg;
    cfg.base.app = AppProfile::memcached();
    cfg.base.load = LoadLevel::kMed;
    cfg.base.freqPolicy = "ondemand";
    cfg.base.seed = 29;
    cfg.base.warmup = milliseconds(5);
    cfg.base.duration = milliseconds(40);
    cfg.dispatch = "round-robin";
    cfg.drain = milliseconds(20);
    cfg.base.params.set("topology.tiers", 3);
    cfg.base.params.set("topology.tier1.hosts", 2);
    cfg.base.params.set("fault.wire_loss", "0.03");
    cfg.base.params.setTick("client.timeout", milliseconds(4));
    cfg.base.params.set("client.retries", 3);
    ClusterResult r = ClusterExperiment(cfg).run();

    EXPECT_GT(r.faultPacketsLost, 0u);
    EXPECT_GT(r.retransmits, 0u);
    EXPECT_EQ(r.requestsSent, r.responsesReceived +
                                  r.requestsTimedOut +
                                  r.requestsInFlight);
    EXPECT_LE(r.availability, 1.0);
    EXPECT_GT(r.availability, 0.5);
}

using AdmissionSeed = std::tuple<std::string, unsigned>;

class ShedConservation
    : public ::testing::TestWithParam<AdmissionSeed>
{
};

/**
 * With admission control shedding load, the conservation identity
 * grows one term and stays exact: every request the client sent is
 * answered, timed out, shed, or still in flight. A shed notice is
 * terminal — it must never be retransmitted or double-counted as a
 * timeout — so the four buckets partition `sent` exactly, whichever
 * admission policy did the shedding.
 */
TEST_P(ShedConservation, SentEqualsAnsweredPlusTimedOutPlusShedPlusInFlight)
{
    auto [admission, seed] = GetParam();

    ExperimentConfig cfg;
    cfg.app = AppProfile::memcached();
    cfg.freqPolicy = "ondemand";
    cfg.load = LoadLevel::kHigh;
    cfg.seed = seed;
    cfg.warmup = milliseconds(10);
    cfg.duration = milliseconds(80);
    cfg.params.setTick("client.timeout", milliseconds(2));
    cfg.params.set("client.retries", 2);
    cfg.params.set("resilience.admission", admission);
    if (admission == "queue-deadline") {
        cfg.params.setTick("resilience.admit_target", microseconds(50));
        cfg.params.setTick("resilience.admit_interval",
                           microseconds(500));
    } else {
        cfg.params.set("resilience.admit_rate", "100e3");
        cfg.params.set("resilience.admit_burst", "32");
    }
    cfg.params.set("resilience.retry_budget", "0.1");
    ExperimentResult r = Experiment(cfg).run();

    // The gate actually bit: overload at this rate must shed. The
    // server counts shed *transmissions*, the client shed *requests*
    // (a retried request can be shed more than once; later notices
    // land as duplicates), so server-side >= client-side.
    EXPECT_GT(r.requestsShed, 0u);
    EXPECT_GE(r.shedAdmission + r.shedSojourn, r.requestsShed);

    // Exact four-way partition of everything the client sent.
    EXPECT_EQ(r.requestsSent, r.responsesReceived +
                                  r.requestsTimedOut + r.requestsShed +
                                  r.requestsInFlight);
    // Budget exhaustions are a subset of the timeouts, never a fifth
    // bucket.
    EXPECT_LE(r.retryBudgetExhausted, r.requestsTimedOut);
}

INSTANTIATE_TEST_SUITE_P(
    AdmissionSweep, ShedConservation,
    ::testing::Combine(::testing::Values("queue-deadline",
                                         "token-bucket"),
                       ::testing::Values(31u, 32u)),
    [](const ::testing::TestParamInfo<AdmissionSeed> &param_info) {
        std::string name = std::get<0>(param_info.param) + "_s" +
                           std::to_string(std::get<1>(param_info.param));
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

/**
 * Full resilience stack on a faulted 3-tier chain: admission at every
 * tier, deadline propagation shedding past-deadline forwards, breakers
 * short-circuiting the crashed host, and a client retry budget. The
 * four-way identity must survive all of it at once — and a rerun must
 * reproduce every counter exactly.
 */
TEST(ShedConservation, FaultedChainWithFullStackAccountsExactly)
{
    auto run = [] {
        ClusterConfig cfg;
        cfg.base.app = AppProfile::memcached();
        cfg.base.load = LoadLevel::kHigh;
        cfg.base.freqPolicy = "ondemand";
        cfg.base.seed = 37;
        cfg.base.warmup = milliseconds(5);
        cfg.base.duration = milliseconds(60);
        cfg.dispatch = "round-robin";
        cfg.drain = milliseconds(20);
        cfg.base.params.set("topology.tiers", 3);
        cfg.base.params.set("topology.tier1.hosts", 2);
        cfg.base.params.setTick("client.timeout", milliseconds(2));
        cfg.base.params.set("client.retries", 3);
        cfg.base.params.set("resilience.admission", "queue-deadline");
        cfg.base.params.setTick("resilience.admit_target",
                                microseconds(100));
        cfg.base.params.setTick("resilience.admit_interval",
                                milliseconds(1));
        cfg.base.params.set("resilience.retry_budget", "0.2");
        cfg.base.params.setTick("resilience.breaker_window",
                                milliseconds(5));
        cfg.base.params.setTick("resilience.deadline", milliseconds(4));
        cfg.base.params.set("fault.crash_host", 1);
        cfg.base.params.setTick("fault.crash_at", milliseconds(15));
        cfg.base.params.setTick("fault.recover_at", milliseconds(40));
        return ClusterExperiment(cfg).run();
    };

    ClusterResult r = run();
    EXPECT_GT(r.requestsShed, 0u);
    EXPECT_EQ(r.requestsSent, r.responsesReceived +
                                  r.requestsTimedOut + r.requestsShed +
                                  r.requestsInFlight);
    EXPECT_LE(r.retryBudgetExhausted, r.requestsTimedOut);

    ClusterResult again = run();
    EXPECT_EQ(again.requestsSent, r.requestsSent);
    EXPECT_EQ(again.responsesReceived, r.responsesReceived);
    EXPECT_EQ(again.requestsTimedOut, r.requestsTimedOut);
    EXPECT_EQ(again.requestsShed, r.requestsShed);
    EXPECT_EQ(again.shedAdmission, r.shedAdmission);
    EXPECT_EQ(again.shedSojourn, r.shedSojourn);
    EXPECT_EQ(again.shedDeadline, r.shedDeadline);
    EXPECT_EQ(again.switchDeadlineSheds, r.switchDeadlineSheds);
    EXPECT_EQ(again.breakerShortCircuits, r.breakerShortCircuits);
    EXPECT_EQ(again.breakerTransitions, r.breakerTransitions);
    EXPECT_EQ(again.retryBudgetExhausted, r.retryBudgetExhausted);
}

} // namespace
} // namespace nmapsim
