/**
 * @file
 * Unit tests for the server application wired into the OS.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "net/nic.hh"
#include "net/wire.hh"
#include "os/server_os.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "workload/server_app.hh"

namespace nmapsim {
namespace {

class ServerAppTest : public ::testing::Test
{
  protected:
    ServerAppTest()
    {
        for (int i = 0; i < 2; ++i) {
            cores_.push_back(std::make_unique<Core>(
                i, eq_, CpuProfile::xeonGold6134(), rng_));
            ptrs_.push_back(cores_.back().get());
        }
        nic_config_.numQueues = 2;
        nic_ = std::make_unique<Nic>(eq_, nic_config_);
        tx_ = std::make_unique<Wire>(eq_, 10e9, microseconds(5));
        tx_->setSink(
            [this](const Packet &p) { responses_.push_back(p); });
        nic_->setTxWire(tx_.get());
        os_ = std::make_unique<ServerOs>(ptrs_, *nic_, OsConfig{});
        app_ = std::make_unique<ServerApp>(
            *os_, *nic_, AppProfile::memcached(), rng_.fork());
        os_->start();
    }

    void
    sendRequest(std::uint32_t flow, std::uint64_t id)
    {
        Packet p;
        p.requestId = id;
        p.kind = Packet::Kind::kRequest;
        p.flowHash = flow;
        p.sizeBytes = 128;
        p.sendTime = eq_.now();
        nic_->receive(p);
    }

    EventQueue eq_;
    Rng rng_{33};
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<Core *> ptrs_;
    NicConfig nic_config_;
    std::unique_ptr<Nic> nic_;
    std::unique_ptr<Wire> tx_;
    std::unique_ptr<ServerOs> os_;
    std::unique_ptr<ServerApp> app_;
    std::vector<Packet> responses_;
};

TEST_F(ServerAppTest, RequestProducesResponse)
{
    sendRequest(0, 42);
    eq_.runUntil(milliseconds(1));
    ASSERT_EQ(responses_.size(), 1u);
    EXPECT_EQ(responses_[0].requestId, 42u);
    EXPECT_EQ(responses_[0].kind, Packet::Kind::kResponse);
    EXPECT_EQ(app_->requestsCompleted(), 1u);
    EXPECT_EQ(app_->requestsReceived(), 1u);
}

TEST_F(ServerAppTest, ResponseEchoesFlowAndTimestamp)
{
    EventFunctionWrapper send(
        [this] { sendRequest(3, 7); }, "send");
    eq_.schedule(&send, microseconds(100));
    eq_.runUntil(milliseconds(1));
    ASSERT_EQ(responses_.size(), 1u);
    EXPECT_EQ(responses_[0].flowHash, 3u);
    EXPECT_EQ(responses_[0].sendTime, microseconds(100));
    EXPECT_EQ(responses_[0].sizeBytes,
              AppProfile::memcached().responseBytes);
}

TEST_F(ServerAppTest, AllRequestsConserved)
{
    for (std::uint64_t i = 0; i < 200; ++i)
        sendRequest(static_cast<std::uint32_t>(i % 7), i);
    eq_.runUntil(milliseconds(20));
    EXPECT_EQ(app_->requestsReceived(), 200u);
    EXPECT_EQ(app_->requestsCompleted(), 200u);
    EXPECT_EQ(responses_.size(), 200u);
    EXPECT_EQ(app_->totalQueued(), 0u);
    EXPECT_EQ(nic_->packetsDropped(), 0u);
}

TEST_F(ServerAppTest, QueuesAreSteeredPerCore)
{
    // Flow 0 -> queue 0, flow 1 -> queue 1; the NIC is masked only
    // while NAPI runs, so check queue assignment via completion.
    sendRequest(0, 1);
    sendRequest(1, 2);
    eq_.runUntil(milliseconds(1));
    EXPECT_EQ(app_->requestsCompleted(), 2u);
    // Both cores did work.
    EXPECT_GT(ptrs_[0]->busyTime(), 0);
    EXPECT_GT(ptrs_[1]->busyTime(), 0);
}

TEST_F(ServerAppTest, FifoWithinCore)
{
    for (std::uint64_t i = 0; i < 10; ++i)
        sendRequest(0, i); // all to core 0
    eq_.runUntil(milliseconds(5));
    ASSERT_EQ(responses_.size(), 10u);
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(responses_[i].requestId, i);
}

} // namespace
} // namespace nmapsim
