/**
 * @file
 * Round-trip and rejection tests for the declarative config format.
 *
 * The core property: `parseConfig(printConfig(c)) == c` for any config
 * whose members are serialisable (everything except loadSchedule and
 * extraObservers). Checked over randomized configs so the schema, the
 * printer and the parser cannot drift apart silently. The rejection
 * half pins down that unknown keys and malformed values are fatal
 * rather than silently ignored.
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/config_io.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace nmapsim {
namespace {

ExperimentConfig
randomConfig(Rng &rng)
{
    ExperimentConfig c;
    const char *apps[] = {"memcached", "nginx", "keyvalue-us"};
    c.app = AppProfile::byName(apps[rng.uniformInt(0, 2)]);
    c.numCores = static_cast<int>(rng.uniformInt(1, 8));
    c.load = static_cast<LoadLevel>(rng.uniformInt(0, 2));
    if (rng.bernoulli(0.5))
        c.rpsOverride = rng.uniform(1e4, 1e6);
    if (rng.bernoulli(0.3))
        c.trainMeanOverride = rng.uniform(1.0, 8.0);
    if (rng.bernoulli(0.3))
        c.dutyOverride = rng.uniform(0.1, 0.9);
    c.burst.period = microseconds(rng.uniformInt(1000, 200000));
    c.burst.onTime = c.burst.period / 2;
    if (rng.bernoulli(0.3))
        c.connectionSkew = rng.uniform(0.0, 1.0);

    const char *policies[] = {"performance", "powersave",  "ondemand",
                              "NMAP",        "NMAP-simpl", "NCAP",
                              "Parties"};
    c.freqPolicy = policies[rng.uniformInt(0, 6)];
    const char *idles[] = {"menu", "disable", "c6only", "teo"};
    c.idlePolicy = idles[rng.uniformInt(0, 3)];

    c.gov.samplePeriod = milliseconds(rng.uniformInt(1, 50));
    c.gov.upThreshold = rng.uniform(0.5, 0.95);
    c.gov.downThreshold = rng.uniform(0.05, 0.4);
    c.gov.ewmaAlpha = rng.uniform(0.1, 0.9);

    c.os.irqCycles = rng.uniform(500.0, 3000.0);
    c.os.rxPacketCycles = rng.uniform(2000.0, 9000.0);
    c.os.napiWeight = static_cast<int>(rng.uniformInt(8, 64));
    c.os.jiffy = milliseconds(rng.uniformInt(1, 10));

    c.nic.rxRingSize =
        static_cast<std::size_t>(rng.uniformInt(256, 4096));
    c.nic.itr = microseconds(rng.uniformInt(0, 200));

    c.numConnections = static_cast<int>(rng.uniformInt(8, 64));
    c.warmup = milliseconds(rng.uniformInt(0, 500));
    c.duration = milliseconds(rng.uniformInt(50, 2000));
    c.seed = rng.next();
    c.collectTraces = rng.bernoulli(0.5);
    c.traceBucket = microseconds(rng.uniformInt(100, 5000));
    c.collectLatencyTrace = rng.bernoulli(0.5);
    c.watchCore = static_cast<int>(rng.uniformInt(0, 7));

    // Policy tunables ride through the params blob verbatim.
    if (rng.bernoulli(0.7)) {
        c.params.set("nmap.ni_th", rng.uniform(5.0, 30.0));
        c.params.set("nmap.cu_th", rng.uniform(0.2, 0.8));
    }
    if (rng.bernoulli(0.3))
        c.params.setTick("nmap.timer_interval",
                         microseconds(rng.uniformInt(50, 500)));
    if (rng.bernoulli(0.3))
        c.params.set("userspace.pstate",
                     static_cast<int>(rng.uniformInt(0, 5)));
    if (rng.bernoulli(0.2))
        c.params.set("nmap.auto_profile", false);
    return c;
}

TEST(ConfigIoTest, DefaultConfigRoundTrips)
{
    ExperimentConfig def;
    EXPECT_EQ(parseConfig(printConfig(def)), def);
}

TEST(ConfigIoTest, RandomConfigsRoundTrip)
{
    Rng rng(20260807);
    for (int i = 0; i < 50; ++i) {
        ExperimentConfig cfg = randomConfig(rng);
        std::string text = printConfig(cfg);
        SCOPED_TRACE("iteration " + std::to_string(i) + "\n" + text);
        EXPECT_EQ(parseConfig(text), cfg);
    }
}

TEST(ConfigIoTest, PrintIsStableUnderReparse)
{
    Rng rng(7);
    ExperimentConfig cfg = randomConfig(rng);
    std::string once = printConfig(cfg);
    EXPECT_EQ(printConfig(parseConfig(once)), once);
}

TEST(ConfigIoTest, CommentsAndBlankLinesAreSkipped)
{
    ExperimentConfig cfg = parseConfig("# a comment\n"
                                       "\n"
                                       "  cores = 4  \n"
                                       "   # indented comment\n"
                                       "freq_policy=NMAP\n");
    EXPECT_EQ(cfg.numCores, 4);
    EXPECT_EQ(cfg.freqPolicy, "NMAP");
}

TEST(ConfigIoTest, PolicyTunablesPassThrough)
{
    ExperimentConfig cfg = parseConfig("nmap.ni_th=13.5\n"
                                       "custom.knob=whatever\n");
    EXPECT_DOUBLE_EQ(cfg.params.getDouble("nmap.ni_th", 0.0), 13.5);
    EXPECT_EQ(cfg.params.raw("custom.knob"), "whatever");
}

TEST(ConfigIoTest, UnknownFlatKeyIsFatal)
{
    ExperimentConfig cfg;
    EXPECT_THROW(setConfigValue(cfg, "coers", "4"), FatalError);
    EXPECT_THROW(parseConfig("bogus_key=1\n"), FatalError);
}

TEST(ConfigIoTest, UnknownHarnessStructKeyIsFatal)
{
    // Dotted keys under the fixed harness prefixes must match the
    // schema exactly; only other prefixes pass through to params.
    ExperimentConfig cfg;
    EXPECT_THROW(setConfigValue(cfg, "gov.bogus", "1"), FatalError);
    EXPECT_THROW(setConfigValue(cfg, "os.irq_cycle", "1"), FatalError);
    EXPECT_THROW(setConfigValue(cfg, "nic.ringsize", "1"), FatalError);
    EXPECT_THROW(setConfigValue(cfg, "burst.up", "1"), FatalError);
    EXPECT_THROW(setConfigValue(cfg, ".leading_dot", "1"), FatalError);
}

TEST(ConfigIoTest, MalformedValuesAreFatal)
{
    ExperimentConfig cfg;
    EXPECT_THROW(setConfigValue(cfg, "cores", "four"), FatalError);
    EXPECT_THROW(setConfigValue(cfg, "cores", "4x"), FatalError);
    EXPECT_THROW(setConfigValue(cfg, "seed", "-1"), FatalError);
    EXPECT_THROW(setConfigValue(cfg, "rps_override", "fast"),
                 FatalError);
    EXPECT_THROW(setConfigValue(cfg, "duration", "10parsecs"),
                 FatalError);
    EXPECT_THROW(setConfigValue(cfg, "collect_traces", "maybe"),
                 FatalError);
    EXPECT_THROW(setConfigValue(cfg, "load", "extreme"), FatalError);
    EXPECT_THROW(setConfigValue(cfg, "app", "postgres"), FatalError);
}

TEST(ConfigIoTest, MalformedLinesAreFatal)
{
    EXPECT_THROW(parseConfig("cores 4\n"), FatalError);
    EXPECT_THROW(parseConfig("=5\n"), FatalError);
}

} // namespace
} // namespace nmapsim
