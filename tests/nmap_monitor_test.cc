/**
 * @file
 * Unit tests for NMAP's Mode Transition Monitor (Algorithm 1).
 */

#include <gtest/gtest.h>

#include <vector>

#include "nmap/monitor.hh"
#include "sim/logging.hh"

namespace nmapsim {
namespace {

TEST(MonitorTest, WindowCountersAccumulate)
{
    ModeTransitionMonitor m(2, 100.0);
    m.onHardIrq(0);
    m.onPollProcessed(0, 10, 0);
    m.onPollProcessed(0, 0, 30);
    EXPECT_EQ(m.windowIntrCount(0), 10u);
    EXPECT_EQ(m.windowPollCount(0), 30u);
    EXPECT_EQ(m.windowIntrCount(1), 0u);
}

TEST(MonitorTest, ResetWindowClearsOnlyThatCore)
{
    ModeTransitionMonitor m(2, 100.0);
    m.onPollProcessed(0, 5, 5);
    m.onPollProcessed(1, 7, 7);
    m.resetWindow(0);
    EXPECT_EQ(m.windowPollCount(0), 0u);
    EXPECT_EQ(m.windowIntrCount(0), 0u);
    EXPECT_EQ(m.windowPollCount(1), 7u);
}

TEST(MonitorTest, NotifiesWhenSessionPollExceedsThreshold)
{
    ModeTransitionMonitor m(1, 20.0);
    std::vector<int> notified;
    m.setNotify([&](int core) { notified.push_back(core); });

    m.onHardIrq(0);
    m.onPollProcessed(0, 16, 0);
    EXPECT_TRUE(notified.empty()); // interrupt-mode packets don't count
    m.onPollProcessed(0, 0, 16);
    EXPECT_TRUE(notified.empty()); // 16 <= 20
    m.onPollProcessed(0, 0, 16);   // session total 32 > 20
    ASSERT_EQ(notified.size(), 1u);
    EXPECT_EQ(notified[0], 0);
}

TEST(MonitorTest, NotifiesAtMostOncePerSession)
{
    ModeTransitionMonitor m(1, 10.0);
    int notifications = 0;
    m.setNotify([&](int) { ++notifications; });
    m.onHardIrq(0);
    m.onPollProcessed(0, 0, 50);
    m.onPollProcessed(0, 0, 50);
    m.onPollProcessed(0, 0, 50);
    EXPECT_EQ(notifications, 1);
    EXPECT_EQ(m.notificationsSent(), 1u);
}

TEST(MonitorTest, NewSessionResetsSessionCounter)
{
    ModeTransitionMonitor m(1, 30.0);
    int notifications = 0;
    m.setNotify([&](int) { ++notifications; });
    m.onHardIrq(0);
    m.onPollProcessed(0, 0, 25);
    m.onHardIrq(0); // new interrupt: new session
    m.onPollProcessed(0, 0, 25);
    EXPECT_EQ(notifications, 0);
    EXPECT_EQ(m.sessionPollCount(0), 25u);

    m.onPollProcessed(0, 0, 25); // 50 > 30 within one session
    EXPECT_EQ(notifications, 1);
}

TEST(MonitorTest, NotifiesAgainInLaterSession)
{
    ModeTransitionMonitor m(1, 10.0);
    int notifications = 0;
    m.setNotify([&](int) { ++notifications; });
    m.onHardIrq(0);
    m.onPollProcessed(0, 0, 20);
    m.onHardIrq(0);
    m.onPollProcessed(0, 0, 20);
    EXPECT_EQ(notifications, 2);
}

TEST(MonitorTest, PerCoreIndependence)
{
    ModeTransitionMonitor m(2, 10.0);
    std::vector<int> notified;
    m.setNotify([&](int core) { notified.push_back(core); });
    m.onHardIrq(0);
    m.onHardIrq(1);
    m.onPollProcessed(1, 0, 50);
    ASSERT_EQ(notified.size(), 1u);
    EXPECT_EQ(notified[0], 1);
    EXPECT_EQ(m.sessionPollCount(0), 0u);
}

TEST(MonitorTest, ThresholdAdjustable)
{
    ModeTransitionMonitor m(1, 1000.0);
    int notifications = 0;
    m.setNotify([&](int) { ++notifications; });
    m.onHardIrq(0);
    m.onPollProcessed(0, 0, 100);
    EXPECT_EQ(notifications, 0);
    m.setNiThreshold(50.0);
    m.onPollProcessed(0, 0, 1);
    EXPECT_EQ(notifications, 1);
    EXPECT_DOUBLE_EQ(m.niThreshold(), 50.0);
}

TEST(MonitorTest, ZeroCoresIsFatal)
{
    EXPECT_THROW(ModeTransitionMonitor(0, 1.0), FatalError);
}

} // namespace
} // namespace nmapsim
