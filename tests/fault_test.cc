/**
 * @file
 * Unit tests for the fault-injection subsystem: FaultPlan parsing and
 * validation, FaultInjector loss/corruption/flap/ring/crash execution
 * against real wires and NICs, and the client retry/timeout machinery
 * (retransmission, exponential backoff, duplicate accounting and the
 * sent == received + timedOut + inFlight conservation identity).
 */

#include <gtest/gtest.h>

#include <vector>

#include "fault/injector.hh"
#include "fault/plan.hh"
#include "net/nic.hh"
#include "net/wire.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workload/app_profile.hh"
#include "workload/client.hh"

namespace nmapsim {
namespace {

// --- FaultPlan parsing ---------------------------------------------

TEST(FaultPlanTest, NoFaultKeysYieldsDisabledPlan)
{
    PolicyParams params;
    params.set("nmap.ni_th", "400"); // non-fault keys are ignored
    const FaultPlan plan = FaultPlan::fromParams(params);
    EXPECT_FALSE(plan.enabled());
    EXPECT_FALSE(plan.wantsLoss());
    EXPECT_FALSE(plan.wantsFlap());
    EXPECT_FALSE(plan.wantsRingDegrade());
    EXPECT_FALSE(plan.wantsCrash());
}

TEST(FaultPlanTest, ReadsEveryKey)
{
    PolicyParams params;
    params.set("fault.wire_loss", "0.05");
    params.set("fault.wire_corrupt", "0.01");
    params.setTick("fault.flap_start", milliseconds(10));
    params.setTick("fault.flap_down", milliseconds(2));
    params.setTick("fault.flap_period", milliseconds(5));
    params.set("fault.flap_cycles", 3);
    params.set("fault.ring_size", 64);
    params.setTick("fault.ring_degrade_at", milliseconds(1));
    params.setTick("fault.ring_restore_at", milliseconds(20));
    params.set("fault.crash_host", 1);
    params.setTick("fault.crash_at", milliseconds(4));
    params.setTick("fault.recover_at", milliseconds(8));
    const FaultPlan plan = FaultPlan::fromParams(params);
    EXPECT_TRUE(plan.enabled());
    EXPECT_DOUBLE_EQ(plan.wireLoss, 0.05);
    EXPECT_DOUBLE_EQ(plan.wireCorrupt, 0.01);
    EXPECT_EQ(plan.flapStart, milliseconds(10));
    EXPECT_EQ(plan.flapDown, milliseconds(2));
    EXPECT_EQ(plan.flapPeriod, milliseconds(5));
    EXPECT_EQ(plan.flapCycles, 3);
    EXPECT_EQ(plan.ringSize, 64u);
    EXPECT_EQ(plan.ringDegradeAt, milliseconds(1));
    EXPECT_EQ(plan.ringRestoreAt, milliseconds(20));
    ASSERT_EQ(plan.crashHosts.size(), 1u);
    EXPECT_EQ(plan.crashHosts[0], 1);
    EXPECT_EQ(plan.crashAt, milliseconds(4));
    EXPECT_EQ(plan.recoverAt, milliseconds(8));
}

TEST(FaultPlanTest, CrashHostListParsesAndValidates)
{
    PolicyParams params;
    params.set("fault.crash_host", "1,3");
    params.setTick("fault.crash_at", milliseconds(4));
    const FaultPlan plan = FaultPlan::fromParams(params);
    ASSERT_EQ(plan.crashHosts.size(), 2u);
    EXPECT_EQ(plan.crashHosts[0], 1);
    EXPECT_EQ(plan.crashHosts[1], 3);

    PolicyParams none;
    none.set("fault.crash_host", "-1");
    EXPECT_FALSE(FaultPlan::fromParams(none).wantsCrash());

    PolicyParams bad;
    bad.set("fault.crash_host", "1,x");
    bad.setTick("fault.crash_at", milliseconds(4));
    EXPECT_THROW(FaultPlan::fromParams(bad), FatalError);

    PolicyParams neg;
    neg.set("fault.crash_host", "1,-1");
    neg.setTick("fault.crash_at", milliseconds(4));
    EXPECT_THROW(FaultPlan::fromParams(neg), FatalError);
}

TEST(FaultPlanTest, UnknownFaultKeyIsFatal)
{
    PolicyParams params;
    params.set("fault.wire_losss", "0.1"); // typo
    EXPECT_THROW(FaultPlan::fromParams(params), FatalError);
}

TEST(FaultPlanTest, LossProbabilityMustBeBelowOne)
{
    PolicyParams params;
    params.set("fault.wire_loss", "1.0");
    EXPECT_THROW(FaultPlan::fromParams(params), FatalError);
}

TEST(FaultPlanTest, LossPlusCorruptMustStayBelowOne)
{
    PolicyParams params;
    params.set("fault.wire_loss", "0.6");
    params.set("fault.wire_corrupt", "0.5");
    EXPECT_THROW(FaultPlan::fromParams(params), FatalError);
}

TEST(FaultPlanTest, CrashHostRequiresCrashAt)
{
    PolicyParams params;
    params.set("fault.crash_host", 0);
    EXPECT_THROW(FaultPlan::fromParams(params), FatalError);
}

TEST(FaultPlanTest, RecoveryMustFollowCrash)
{
    PolicyParams params;
    params.set("fault.crash_host", 0);
    params.setTick("fault.crash_at", milliseconds(10));
    params.setTick("fault.recover_at", milliseconds(5));
    EXPECT_THROW(FaultPlan::fromParams(params), FatalError);
}

TEST(FaultPlanTest, FlapPeriodMustExceedDownWindow)
{
    PolicyParams params;
    params.setTick("fault.flap_start", milliseconds(1));
    params.setTick("fault.flap_down", milliseconds(5));
    params.setTick("fault.flap_period", milliseconds(5));
    params.set("fault.flap_cycles", 2);
    EXPECT_THROW(FaultPlan::fromParams(params), FatalError);
}

TEST(FaultPlanTest, NegativeRingSizeIsFatal)
{
    PolicyParams params;
    params.set("fault.ring_size", -8);
    params.setTick("fault.ring_degrade_at", milliseconds(1));
    EXPECT_THROW(FaultPlan::fromParams(params), FatalError);
}

// --- ClientRetryPolicy parsing -------------------------------------

TEST(RetryPolicyTest, ReadsKeys)
{
    PolicyParams params;
    params.setTick("client.timeout", milliseconds(2));
    params.set("client.retries", 4);
    params.setTick("client.backoff_cap", milliseconds(10));
    const ClientRetryPolicy retry =
        ClientRetryPolicy::fromParams(params);
    EXPECT_TRUE(retry.enabled());
    EXPECT_EQ(retry.timeout, milliseconds(2));
    EXPECT_EQ(retry.maxRetries, 4);
    EXPECT_EQ(retry.backoffCap, milliseconds(10));
}

TEST(RetryPolicyTest, UnknownClientKeyIsFatal)
{
    PolicyParams params;
    params.set("client.retrys", "3"); // typo
    EXPECT_THROW(ClientRetryPolicy::fromParams(params), FatalError);
}

TEST(RetryPolicyTest, RetriesRequireTimeout)
{
    PolicyParams params;
    params.set("client.retries", 3);
    EXPECT_THROW(ClientRetryPolicy::fromParams(params), FatalError);
}

TEST(RetryPolicyTest, CapMustCoverBaseTimeout)
{
    PolicyParams params;
    params.setTick("client.timeout", milliseconds(2));
    params.setTick("client.backoff_cap", milliseconds(1));
    EXPECT_THROW(ClientRetryPolicy::fromParams(params), FatalError);
}

// --- FaultInjector against real wires ------------------------------

/** Send @p n minimal packets through @p wire immediately. */
void
pump(EventQueue &eq, Wire &wire, int n)
{
    for (int i = 0; i < n; ++i) {
        Packet pkt;
        pkt.requestId = static_cast<std::uint64_t>(i) + 1;
        pkt.sizeBytes = 128;
        wire.send(pkt);
    }
    eq.runAll();
}

TEST(FaultInjectorTest, LossFilterDropsAndDeliversDeterministically)
{
    auto runOnce = [](std::uint64_t seed) {
        EventQueue eq;
        Wire wire(eq);
        std::vector<std::uint64_t> delivered;
        wire.setSink([&delivered](const Packet &pkt) {
            delivered.push_back(pkt.requestId);
        });
        FaultPlan plan;
        plan.wireLoss = 0.5;
        FaultInjector injector(eq, plan, Rng(seed));
        injector.addLossyWire(wire);
        pump(eq, wire, 200);
        return std::make_pair(delivered, injector.packetsFaultLost());
    };

    const auto [first, lostFirst] = runOnce(7);
    const auto [second, lostSecond] = runOnce(7);
    EXPECT_EQ(first, second); // identical seed ⇒ identical drops
    EXPECT_EQ(lostFirst, lostSecond);
    EXPECT_GT(lostFirst, 50u); // ~100 of 200 at p = 0.5
    EXPECT_LT(lostFirst, 150u);
    EXPECT_EQ(first.size() + lostFirst, 200u);
}

TEST(FaultInjectorTest, CorruptPacketsOccupyLineButNeverDeliver)
{
    EventQueue eq;
    Wire wire(eq);
    std::uint64_t delivered = 0;
    wire.setSink([&delivered](const Packet &) { ++delivered; });
    FaultPlan plan;
    plan.wireCorrupt = 1.0; // direct construction skips validation
    FaultInjector injector(eq, plan, Rng(1));
    injector.addLossyWire(wire);
    pump(eq, wire, 10);
    EXPECT_EQ(delivered, 0u);
    EXPECT_EQ(injector.packetsCorrupted(), 10u);
    EXPECT_EQ(wire.packetsDelivered(), 0u);
}

TEST(FaultInjectorTest, FlapDownsAndRestoresOnSchedule)
{
    EventQueue eq;
    Wire a(eq);
    Wire b(eq);
    a.setSink([](const Packet &) {});
    b.setSink([](const Packet &) {});
    FaultPlan plan;
    plan.flapStart = milliseconds(1);
    plan.flapDown = milliseconds(2);
    plan.flapPeriod = milliseconds(5);
    plan.flapCycles = 2;
    FaultInjector injector(eq, plan, Rng(1));
    injector.addFlapGroup({&a, &b});

    eq.runUntil(plan.flapStart + microseconds(1));
    EXPECT_TRUE(a.linkDown());
    EXPECT_TRUE(b.linkDown());
    // A send while down is a counted drop, not an error.
    Packet pkt;
    pkt.sizeBytes = 128;
    a.send(pkt);
    EXPECT_EQ(a.packetsLinkDownLost(), 1u);

    eq.runUntil(plan.flapStart + plan.flapDown + microseconds(1));
    EXPECT_FALSE(a.linkDown()); // first up edge

    eq.runUntil(plan.flapStart + plan.flapPeriod + microseconds(1));
    EXPECT_TRUE(a.linkDown()); // second cycle's down edge

    eq.runAll();
    EXPECT_FALSE(a.linkDown()); // schedule exhausted, link restored
    EXPECT_EQ(injector.packetsLinkDownLost(), 1u);
}

TEST(FaultInjectorTest, RingDegradesAndRestores)
{
    EventQueue eq;
    NicConfig cfg;
    cfg.rxRingSize = 2048;
    Nic nic(eq, cfg);
    FaultPlan plan;
    plan.ringDegradeAt = milliseconds(1);
    plan.ringSize = 32;
    plan.ringRestoreAt = milliseconds(2);
    FaultInjector injector(eq, plan, Rng(1));
    injector.addDegradableNic(nic);

    eq.runUntil(milliseconds(1) + microseconds(1));
    EXPECT_EQ(nic.config().rxRingSize, 32u);
    eq.runAll();
    EXPECT_EQ(nic.config().rxRingSize, 2048u);
}

TEST(FaultInjectorTest, CrashCallbacksFireAtPlanTimes)
{
    EventQueue eq;
    FaultPlan plan;
    plan.crashHosts = {0};
    plan.crashAt = milliseconds(3);
    plan.recoverAt = milliseconds(7);
    FaultInjector injector(eq, plan, Rng(1));
    Tick downAt = 0;
    Tick upAt = 0;
    injector.scheduleCrash([&] { downAt = eq.now(); },
                           [&] { upAt = eq.now(); });
    eq.runAll();
    EXPECT_EQ(downAt, plan.crashAt);
    EXPECT_EQ(upAt, plan.recoverAt);
}

// --- Client retry/timeout machinery --------------------------------

/** A controllable "server": counts request arrivals per transmission
 *  and answers only the attempts the test allows. */
class RetryHarness : public ::testing::Test
{
  protected:
    RetryHarness()
        : toServer_(eq_), toClient_(eq_),
          client_(eq_, toServer_, AppProfile::memcached(), 8)
    {
        toServer_.setSink([this](const Packet &pkt) {
            arrivals_.push_back({eq_.now(), pkt});
            if (answerFrom_ > 0 &&
                static_cast<int>(arrivals_.size()) >= answerFrom_) {
                Packet resp = pkt;
                resp.kind = Packet::Kind::kResponse;
                toClient_.send(resp);
            }
        });
        toClient_.setSink(
            [this](const Packet &pkt) { client_.onResponse(pkt); });
    }

    void
    enableRetry(Tick timeout, int retries, Tick cap = 0)
    {
        ClientRetryPolicy retry;
        retry.timeout = timeout;
        retry.maxRetries = retries;
        retry.backoffCap = cap;
        client_.setRetryPolicy(retry);
    }

    EventQueue eq_;
    Wire toServer_;
    Wire toClient_;
    Client client_;
    int answerFrom_ = 0; //!< answer the Nth arrival on; 0 = never
    std::vector<std::pair<Tick, Packet>> arrivals_;
};

TEST_F(RetryHarness, RetransmitsUntilAnswered)
{
    enableRetry(milliseconds(1), 5);
    answerFrom_ = 3; // drop the first two transmissions
    client_.sendRequest(0);
    eq_.runAll();
    ASSERT_EQ(arrivals_.size(), 3u);
    // All transmissions carry the same request id (it is a retry, not
    // a new request) and sent_ counts unique requests.
    EXPECT_EQ(arrivals_[0].second.requestId,
              arrivals_[2].second.requestId);
    EXPECT_EQ(client_.requestsSent(), 1u);
    EXPECT_EQ(client_.retransmits(), 2u);
    EXPECT_EQ(client_.responsesReceived(), 1u);
    EXPECT_EQ(client_.requestsTimedOut(), 0u);
    EXPECT_EQ(client_.requestsInFlight(), 0u);
    // Completion latency spans both backoffs; the winning attempt's
    // latency is just one wire round trip.
    EXPECT_GT(client_.latencies().max(),
              client_.attemptLatencies().max());
}

TEST_F(RetryHarness, TimesOutAfterRetryBudget)
{
    enableRetry(milliseconds(1), 2);
    answerFrom_ = 0; // never answer
    client_.sendRequest(0);
    eq_.runAll();
    EXPECT_EQ(arrivals_.size(), 3u); // 1 first attempt + 2 retries
    EXPECT_EQ(client_.requestsTimedOut(), 1u);
    EXPECT_EQ(client_.requestsInFlight(), 0u);
    EXPECT_EQ(client_.responsesReceived(), 0u);
    // Conservation: sent == received + timedOut + inFlight.
    EXPECT_EQ(client_.requestsSent(),
              client_.responsesReceived() +
                  client_.requestsTimedOut() +
                  client_.requestsInFlight());
}

TEST_F(RetryHarness, BackoffDoublesAndCaps)
{
    enableRetry(milliseconds(1), 3, milliseconds(2));
    answerFrom_ = 0;
    client_.sendRequest(0);
    eq_.runAll();
    ASSERT_EQ(arrivals_.size(), 4u);
    // Gaps between transmissions: timeout, 2*timeout, then capped.
    const Tick gap1 = arrivals_[1].first - arrivals_[0].first;
    const Tick gap2 = arrivals_[2].first - arrivals_[1].first;
    const Tick gap3 = arrivals_[3].first - arrivals_[2].first;
    EXPECT_EQ(gap1, milliseconds(1));
    EXPECT_EQ(gap2, milliseconds(2));
    EXPECT_EQ(gap3, milliseconds(2)); // 4 ms capped at 2 ms
}

TEST_F(RetryHarness, LateDuplicateIsCountedNotRecorded)
{
    enableRetry(milliseconds(1), 0); // no retries: times out fast
    answerFrom_ = 0;
    client_.sendRequest(0);
    eq_.runAll();
    ASSERT_EQ(client_.requestsTimedOut(), 1u);
    // The answer shows up after the client gave up.
    Packet resp = arrivals_[0].second;
    resp.kind = Packet::Kind::kResponse;
    client_.onResponse(resp);
    EXPECT_EQ(client_.duplicateResponses(), 1u);
    EXPECT_EQ(client_.responsesReceived(), 0u);
    EXPECT_EQ(client_.latencies().count(), 0u);
}

TEST_F(RetryHarness, RetryPolicyMustBeSetBeforeFirstSend)
{
    client_.sendRequest(0);
    ClientRetryPolicy retry;
    retry.timeout = milliseconds(1);
    EXPECT_THROW(client_.setRetryPolicy(retry), FatalError);
}

TEST_F(RetryHarness, DisabledPolicyKeepsFireAndForgetBehaviour)
{
    answerFrom_ = 1;
    client_.sendRequest(0);
    eq_.runAll();
    EXPECT_EQ(client_.responsesReceived(), 1u);
    EXPECT_EQ(client_.requestsInFlight(), 0u);
    client_.sendRequest(1); // never answered, never retried
    answerFrom_ = 0;
    eq_.runAll();
    EXPECT_EQ(client_.requestsInFlight(), 1u);
    EXPECT_EQ(client_.retransmits(), 0u);
    EXPECT_EQ(client_.requestsTimedOut(), 0u);
}

} // namespace
} // namespace nmapsim
