/**
 * @file
 * Unit tests for the ASCII table writer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/logging.hh"
#include "stats/table.hh"

namespace nmapsim {
namespace {

TEST(TableTest, FormatsAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    // Header separator rule present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, RowArityMismatchIsFatal)
{
    Table t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(TableTest, EmptyHeaderIsFatal)
{
    EXPECT_THROW(Table({}), FatalError);
}

TEST(TableTest, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(TableTest, PctFormatsSignedPercent)
{
    EXPECT_EQ(Table::pct(0.105), "+10.5%");
    EXPECT_EQ(Table::pct(-0.02), "-2.0%");
}

TEST(TableTest, NumRows)
{
    Table t({"x"});
    EXPECT_EQ(t.numRows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.numRows(), 2u);
}

} // namespace
} // namespace nmapsim
