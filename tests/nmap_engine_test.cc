/**
 * @file
 * Unit tests for NMAP's Decision Engine (Algorithm 2) and the governor
 * wrappers (NMAP, NMAP-simpl).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "nmap/nmap_governor.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace nmapsim {
namespace {

class EngineTest : public ::testing::Test
{
  protected:
    EngineTest()
    {
        for (int i = 0; i < 2; ++i) {
            cores_.push_back(std::make_unique<Core>(
                i, eq_, CpuProfile::xeonGold6134(), rng_));
            ptrs_.push_back(cores_.back().get());
        }
        config_.niThreshold = 20.0;
        config_.cuThreshold = 1.0;
        config_.timerInterval = milliseconds(10);
    }

    NmapConfig config_;
    EventQueue eq_;
    Rng rng_{17};
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<Core *> ptrs_;
};

TEST_F(EngineTest, NotificationEntersNetworkIntensiveMode)
{
    NmapGovernor nmap(eq_, ptrs_, config_);
    nmap.start();
    // Cores idle: the fallback drives them to Pmin first.
    eq_.runUntil(milliseconds(25));
    int pmin = ptrs_[0]->profile().pstates.maxIndex();
    EXPECT_EQ(ptrs_[0]->pstateIndex(), pmin);

    // Excessive polling on core 0 -> NI mode -> P0, ondemand disabled.
    nmap.onHardIrq(0);
    nmap.onPollProcessed(0, 0, 50);
    EXPECT_TRUE(nmap.networkIntensive(0));
    EXPECT_FALSE(nmap.networkIntensive(1));
    EXPECT_FALSE(nmap.fallback().enabled(0));
    EXPECT_TRUE(nmap.fallback().enabled(1));
    eq_.runUntil(milliseconds(26));
    EXPECT_EQ(ptrs_[0]->pstateIndex(), 0);
    EXPECT_EQ(ptrs_[1]->pstateIndex(), pmin);
}

TEST_F(EngineTest, FallsBackWhenRatioDrops)
{
    NmapGovernor nmap(eq_, ptrs_, config_);
    nmap.start();
    nmap.onHardIrq(0);
    nmap.onPollProcessed(0, 0, 50);
    ASSERT_TRUE(nmap.networkIntensive(0));

    // Window with high polling ratio: stays in NI mode.
    nmap.onPollProcessed(0, 10, 40); // ratio 90/10 = 9 > 1
    eq_.runUntil(milliseconds(12));
    EXPECT_TRUE(nmap.networkIntensive(0));

    // Window with interrupt-dominated traffic: ratio < CU_TH.
    nmap.onHardIrq(0);
    nmap.onPollProcessed(0, 40, 5);
    eq_.runUntil(milliseconds(22));
    EXPECT_FALSE(nmap.networkIntensive(0));
    EXPECT_TRUE(nmap.fallback().enabled(0));
    // The fallback enforced a utilisation-based state (core idle ->
    // Pmin).
    eq_.runUntil(milliseconds(30));
    EXPECT_EQ(ptrs_[0]->pstateIndex(),
              ptrs_[0]->profile().pstates.maxIndex());
}

TEST_F(EngineTest, EmptyWindowFallsBack)
{
    NmapGovernor nmap(eq_, ptrs_, config_);
    nmap.start();
    nmap.onHardIrq(0);
    nmap.onPollProcessed(0, 0, 50);
    ASSERT_TRUE(nmap.networkIntensive(0));
    // No packets at all in the next window: ratio 0 -> CPU mode.
    eq_.runUntil(milliseconds(25));
    EXPECT_FALSE(nmap.networkIntensive(0));
}

TEST_F(EngineTest, ModeSwitchCountersTrack)
{
    NmapGovernor nmap(eq_, ptrs_, config_);
    nmap.start();
    nmap.onHardIrq(0);
    nmap.onPollProcessed(0, 0, 50);
    // First timer window still holds the 50 polling packets (ratio
    // high): NI persists. The second window is empty: fall back.
    eq_.runUntil(milliseconds(22));
    nmap.onHardIrq(0);
    nmap.onPollProcessed(0, 0, 50);
    EXPECT_EQ(nmap.engine().modeSwitchesToNi(), 2u);
    EXPECT_EQ(nmap.engine().modeSwitchesToCpu(), 1u);
}

TEST_F(EngineTest, RepeatedNotificationsAreIdempotent)
{
    NmapGovernor nmap(eq_, ptrs_, config_);
    nmap.start();
    nmap.onHardIrq(0);
    nmap.onPollProcessed(0, 0, 50);
    nmap.onHardIrq(0);
    nmap.onPollProcessed(0, 0, 50);
    EXPECT_EQ(nmap.engine().modeSwitchesToNi(), 1u);
}

TEST_F(EngineTest, WindowResetsEveryTimerPeriod)
{
    NmapGovernor nmap(eq_, ptrs_, config_);
    nmap.start();
    nmap.onPollProcessed(0, 10, 10);
    eq_.runUntil(milliseconds(12));
    EXPECT_EQ(nmap.monitor().windowPollCount(0), 0u);
    EXPECT_EQ(nmap.monitor().windowIntrCount(0), 0u);
}

TEST_F(EngineTest, SimplEntersNiOnKsoftirqdWake)
{
    NmapSimplGovernor simpl(eq_, ptrs_, {});
    simpl.start();
    eq_.runUntil(milliseconds(25));
    int pmin = ptrs_[0]->profile().pstates.maxIndex();
    ASSERT_EQ(ptrs_[0]->pstateIndex(), pmin);

    simpl.onKsoftirqdWake(0);
    EXPECT_TRUE(simpl.networkIntensive(0));
    EXPECT_FALSE(simpl.fallback().enabled(0));
    eq_.runUntil(milliseconds(26));
    EXPECT_EQ(ptrs_[0]->pstateIndex(), 0);
}

TEST_F(EngineTest, SimplFallsBackOnKsoftirqdSleep)
{
    NmapSimplGovernor simpl(eq_, ptrs_, {});
    simpl.start();
    eq_.runUntil(milliseconds(25));
    simpl.onKsoftirqdWake(0);
    simpl.onKsoftirqdSleep(0);
    EXPECT_FALSE(simpl.networkIntensive(0));
    EXPECT_TRUE(simpl.fallback().enabled(0));
}

TEST_F(EngineTest, SimplIgnoresSpuriousSleep)
{
    NmapSimplGovernor simpl(eq_, ptrs_, {});
    simpl.start();
    simpl.onKsoftirqdSleep(0); // never woke
    EXPECT_FALSE(simpl.networkIntensive(0));
}

TEST_F(EngineTest, SimplPerCore)
{
    NmapSimplGovernor simpl(eq_, ptrs_, {});
    simpl.start();
    simpl.onKsoftirqdWake(1);
    EXPECT_FALSE(simpl.networkIntensive(0));
    EXPECT_TRUE(simpl.networkIntensive(1));
}

} // namespace
} // namespace nmapsim
