/**
 * @file
 * Unit and statistical tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hh"

namespace nmapsim {
namespace {

TEST(RngTest, DeterministicForEqualSeeds)
{
    Rng a(12345);
    Rng b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(5.0, 9.0);
        EXPECT_GE(u, 5.0);
        EXPECT_LT(u, 9.0);
    }
}

TEST(RngTest, UniformIntInclusiveBounds)
{
    Rng rng(3);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        std::int64_t v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
        saw_lo |= v == 2;
        saw_hi |= v == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMean)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(RngTest, NormalMeanAndStdev)
{
    Rng rng(13);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, TruncatedNormalRespectsFloor)
{
    Rng rng(17);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GE(rng.truncatedNormal(1.0, 5.0, 0.5), 0.5);
}

TEST(RngTest, LognormalMeanMatchesFormula)
{
    // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2)
    Rng rng(19);
    double mu = std::log(1000.0);
    double sigma = 0.5;
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.lognormal(mu, sigma);
    double expected = std::exp(mu + sigma * sigma / 2.0);
    EXPECT_NEAR(sum / n / expected, 1.0, 0.02);
}

TEST(RngTest, GeometricMeanMatches)
{
    Rng rng(23);
    double p = 1.0 / 16.0;
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        auto v = rng.geometric(p);
        EXPECT_GE(v, 1);
        sum += static_cast<double>(v);
    }
    EXPECT_NEAR(sum / n, 16.0, 0.5);
}

TEST(RngTest, GeometricWithCertaintyIsOne)
{
    Rng rng(29);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.geometric(1.0), 1);
}

TEST(RngTest, BernoulliFrequency)
{
    Rng rng(31);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream)
{
    Rng parent(41);
    Rng child = parent.fork();
    // The child stream must differ from the parent's continuation.
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (parent.next() == child.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsDeterministic)
{
    Rng a(99);
    Rng b(99);
    Rng ca = a.fork();
    Rng cb = b.fork();
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(ca.next(), cb.next());
}

} // namespace
} // namespace nmapsim
