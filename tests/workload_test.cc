/**
 * @file
 * Unit tests for the workload layer: app profiles, client, load
 * generator.
 */

#include <gtest/gtest.h>

#include "net/wire.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workload/app_profile.hh"
#include "workload/client.hh"
#include "workload/loadgen.hh"

namespace nmapsim {
namespace {

TEST(AppProfileTest, MemcachedMatchesPaperLoads)
{
    AppProfile mc = AppProfile::memcached();
    EXPECT_EQ(mc.slo, milliseconds(1));
    // Burst height x duty = the paper's average RPS figures.
    EXPECT_NEAR(mc.low.avgRps(), 30e3, 1e3);
    EXPECT_NEAR(mc.med.avgRps(), 290e3, 2e3);
    EXPECT_NEAR(mc.high.avgRps(), 750e3, 2e3);
}

TEST(AppProfileTest, NginxMatchesPaperLoads)
{
    AppProfile ng = AppProfile::nginx();
    EXPECT_EQ(ng.slo, milliseconds(10));
    EXPECT_NEAR(ng.low.avgRps(), 18e3, 0.5e3);
    EXPECT_NEAR(ng.med.avgRps(), 48e3, 0.5e3);
    EXPECT_NEAR(ng.high.avgRps(), 56e3, 0.5e3);
}

TEST(AppProfileTest, KeyvalueUsIsMicrosecondScale)
{
    AppProfile kv = AppProfile::keyvalueUs();
    EXPECT_EQ(kv.slo, microseconds(100));
    // Sub-microsecond mean service at 3.2 GHz.
    EXPECT_LT(kv.meanServiceCycles() / 3.2e9, 1e-6);
    EXPECT_LT(kv.meanServiceCycles(),
              AppProfile::memcached().meanServiceCycles());
}

TEST(AppProfileTest, NginxHeavierThanMemcached)
{
    EXPECT_GT(AppProfile::nginx().meanServiceCycles(),
              AppProfile::memcached().meanServiceCycles() * 5);
}

TEST(AppProfileTest, ServiceSamplesMatchConfiguredMean)
{
    AppProfile mc = AppProfile::memcached();
    Rng rng(1);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double c = mc.sampleServiceCycles(rng);
        EXPECT_GT(c, 0.0);
        sum += c;
    }
    EXPECT_NEAR(sum / n / mc.meanServiceCycles(), 1.0, 0.03);
}

TEST(AppProfileTest, LevelAccessor)
{
    AppProfile mc = AppProfile::memcached();
    EXPECT_DOUBLE_EQ(mc.level(LoadLevel::kLow).rps, mc.low.rps);
    EXPECT_DOUBLE_EQ(mc.level(LoadLevel::kHigh).rps, mc.high.rps);
    EXPECT_STREQ(loadLevelName(LoadLevel::kMed), "med");
}

class ClientTest : public ::testing::Test
{
  protected:
    ClientTest()
        : wire_(eq_), client_(eq_, wire_, AppProfile::memcached(), 8)
    {
        wire_.setSink([this](const Packet &p) { sent_.push_back(p); });
    }

    EventQueue eq_;
    Wire wire_;
    Client client_;
    std::vector<Packet> sent_;
};

TEST_F(ClientTest, SendStampsAndCounts)
{
    client_.sendRequest(3);
    eq_.runAll();
    ASSERT_EQ(sent_.size(), 1u);
    EXPECT_EQ(sent_[0].flowHash, 3u);
    EXPECT_EQ(sent_[0].kind, Packet::Kind::kRequest);
    EXPECT_EQ(sent_[0].sendTime, 0);
    EXPECT_EQ(client_.requestsSent(), 1u);
}

TEST_F(ClientTest, UniqueRequestIds)
{
    client_.sendRequest(0);
    client_.sendRequest(0);
    eq_.runAll();
    EXPECT_NE(sent_[0].requestId, sent_[1].requestId);
}

TEST_F(ClientTest, ResponseLatencyMeasured)
{
    Packet resp;
    resp.kind = Packet::Kind::kResponse;
    resp.sendTime = 0;
    EventFunctionWrapper deliver(
        [&] { client_.onResponse(resp); }, "deliver");
    eq_.schedule(&deliver, microseconds(123));
    eq_.runAll();
    EXPECT_EQ(client_.responsesReceived(), 1u);
    EXPECT_EQ(client_.latencies().percentile(50.0), microseconds(123));
}

TEST_F(ClientTest, WindowP99ResetsBetweenReads)
{
    Packet resp;
    resp.kind = Packet::Kind::kResponse;
    resp.sendTime = 0;
    EventFunctionWrapper deliver(
        [&] { client_.onResponse(resp); }, "deliver");
    eq_.schedule(&deliver, microseconds(100));
    eq_.runAll();
    EXPECT_GT(client_.windowP99AndReset(), 0);
    EXPECT_EQ(client_.windowP99AndReset(), 0); // window now empty
    // The global recorder keeps everything.
    EXPECT_EQ(client_.latencies().count(), 1u);
}

TEST_F(ClientTest, RequestPacketIsRejectedAsResponse)
{
    Packet req;
    req.kind = Packet::Kind::kRequest;
    EXPECT_THROW(client_.onResponse(req), PanicError);
}

class LoadGenTest : public ::testing::Test
{
  protected:
    LoadGenTest()
        : wire_(eq_), client_(eq_, wire_, AppProfile::memcached(), 8)
    {
        wire_.setSink([this](const Packet &p) {
            arrivals_.push_back({eq_.now(), p.flowHash});
        });
    }

    EventQueue eq_;
    Wire wire_;
    Client client_;
    std::vector<std::pair<Tick, std::uint32_t>> arrivals_;
};

TEST_F(LoadGenTest, HitsTargetRateInSteadyState)
{
    LoadGenerator gen(eq_, client_, BurstConfig{}, Rng(1));
    gen.setLoad(LoadLevelSpec{100e3, 1.0, 8.0}); // steady 100K RPS
    gen.start();
    eq_.runUntil(milliseconds(200));
    gen.stop();
    double rate = static_cast<double>(client_.requestsSent()) / 0.2;
    EXPECT_NEAR(rate / 100e3, 1.0, 0.1);
}

TEST_F(LoadGenTest, DutyCycleGatesEmission)
{
    BurstConfig burst;
    burst.period = milliseconds(100);
    LoadGenerator gen(eq_, client_, burst, Rng(2));
    gen.setLoad(LoadLevelSpec{200e3, 0.4, 8.0});
    gen.start();
    eq_.runUntil(milliseconds(300));
    gen.stop();

    // All requests fall inside ON windows.
    std::size_t in_burst = 0;
    for (const auto &[t, flow] : arrivals_) {
        // Allow for wire latency between send and arrival.
        if (gen.inBurst(t - microseconds(10)))
            ++in_burst;
    }
    EXPECT_GT(arrivals_.size(), 100u);
    EXPECT_GE(static_cast<double>(in_burst),
              0.95 * static_cast<double>(arrivals_.size()));
    // Average rate is height x duty.
    double avg = static_cast<double>(client_.requestsSent()) / 0.3;
    EXPECT_NEAR(avg / 80e3, 1.0, 0.15);
}

TEST_F(LoadGenTest, TrainsShareOneConnection)
{
    LoadGenerator gen(eq_, client_, BurstConfig{}, Rng(3));
    gen.setLoad(LoadLevelSpec{50e3, 1.0, 16.0});
    gen.start();
    eq_.runUntil(milliseconds(5));
    gen.stop();
    ASSERT_GT(arrivals_.size(), 16u);
    // Consecutive same-flow runs exist (trains land on one core).
    std::size_t longest_run = 1;
    std::size_t run = 1;
    for (std::size_t i = 1; i < arrivals_.size(); ++i) {
        if (arrivals_[i].second == arrivals_[i - 1].second)
            longest_run = std::max(longest_run, ++run);
        else
            run = 1;
    }
    EXPECT_GE(longest_run, 8u);
}

TEST_F(LoadGenTest, StopHaltsEmission)
{
    LoadGenerator gen(eq_, client_, BurstConfig{}, Rng(4));
    gen.setLoad(LoadLevelSpec{100e3, 1.0, 8.0});
    gen.start();
    eq_.runUntil(milliseconds(10));
    gen.stop();
    auto sent = client_.requestsSent();
    eq_.runUntil(milliseconds(50));
    EXPECT_EQ(client_.requestsSent(), sent);
}

TEST_F(LoadGenTest, SetLoadMidRunChangesRate)
{
    LoadGenerator gen(eq_, client_, BurstConfig{}, Rng(5));
    gen.setLoad(LoadLevelSpec{20e3, 1.0, 4.0});
    gen.start();
    eq_.runUntil(milliseconds(100));
    auto slow_sent = client_.requestsSent();
    gen.setLoad(LoadLevelSpec{200e3, 1.0, 4.0});
    eq_.runUntil(milliseconds(200));
    auto fast_sent = client_.requestsSent() - slow_sent;
    EXPECT_GT(fast_sent, slow_sent * 4);
}

TEST_F(LoadGenTest, ConnectionSkewConcentratesTraffic)
{
    LoadGenerator gen(eq_, client_, BurstConfig{}, Rng(8));
    gen.setConnectionSkew(4.0);
    gen.setLoad(LoadLevelSpec{100e3, 1.0, 8.0});
    gen.start();
    eq_.runUntil(milliseconds(100));
    gen.stop();
    ASSERT_GT(arrivals_.size(), 1000u);
    std::size_t on_first_quarter = 0;
    for (const auto &[t, flow] : arrivals_)
        if (flow < 2)
            ++on_first_quarter;
    // With skew 4, far more than 2/8 of the traffic lands on the two
    // lowest connections.
    EXPECT_GT(static_cast<double>(on_first_quarter) /
                  static_cast<double>(arrivals_.size()),
              0.6);
}

TEST_F(LoadGenTest, NegativeSkewIsFatal)
{
    LoadGenerator gen(eq_, client_, BurstConfig{}, Rng(9));
    EXPECT_THROW(gen.setConnectionSkew(-1.0), FatalError);
}

TEST_F(LoadGenTest, InvalidParametersAreFatal)
{
    LoadGenerator gen(eq_, client_, BurstConfig{}, Rng(6));
    EXPECT_THROW(gen.setLoad(-1.0, 8.0), FatalError);
    EXPECT_THROW(gen.setLoad(100.0, 0.5), FatalError);
    EXPECT_THROW(gen.setLoad(LoadLevelSpec{100.0, 1.5, 8.0}),
                 FatalError);
    BurstConfig bad;
    bad.onTime = milliseconds(200);
    bad.period = milliseconds(100);
    EXPECT_THROW(LoadGenerator(eq_, client_, bad, Rng(7)), FatalError);
}

} // namespace
} // namespace nmapsim
