/**
 * @file
 * Unit tests for P-state tables.
 */

#include <gtest/gtest.h>

#include "cpu/pstate.hh"
#include "sim/logging.hh"

namespace nmapsim {
namespace {

TEST(PStateTableTest, LinearConstruction)
{
    PStateTable t = PStateTable::linear(3.2e9, 1.2e9, 1.2, 0.7, 16);
    EXPECT_EQ(t.numStates(), 16u);
    EXPECT_DOUBLE_EQ(t.state(0).freqHz, 3.2e9);
    EXPECT_DOUBLE_EQ(t.state(15).freqHz, 1.2e9);
    EXPECT_DOUBLE_EQ(t.state(0).voltage, 1.2);
    EXPECT_DOUBLE_EQ(t.state(15).voltage, 0.7);
}

TEST(PStateTableTest, FrequenciesStrictlyDescend)
{
    PStateTable t = PStateTable::linear(4.0e9, 0.8e9, 1.25, 0.65, 16);
    for (std::size_t i = 1; i < t.numStates(); ++i)
        EXPECT_LT(t.state(i).freqHz, t.state(i - 1).freqHz);
}

TEST(PStateTableTest, NonDescendingStatesAreFatal)
{
    std::vector<PState> bad{{1e9, 1.0}, {2e9, 1.1}};
    EXPECT_THROW(PStateTable{bad}, FatalError);
}

TEST(PStateTableTest, EmptyTableIsFatal)
{
    EXPECT_THROW(PStateTable{std::vector<PState>{}}, FatalError);
}

TEST(PStateTableTest, TooFewLinearStatesIsFatal)
{
    EXPECT_THROW(PStateTable::linear(2e9, 1e9, 1.0, 0.8, 1), FatalError);
}

TEST(PStateTableTest, ClampIndex)
{
    PStateTable t = PStateTable::linear(3.2e9, 1.2e9, 1.2, 0.7, 16);
    EXPECT_EQ(t.clampIndex(-3), 0);
    EXPECT_EQ(t.clampIndex(5), 5);
    EXPECT_EQ(t.clampIndex(99), 15);
    EXPECT_EQ(t.maxIndex(), 15);
}

TEST(PStateTableTest, IndexForFreqPicksSlowestSufficientState)
{
    PStateTable t = PStateTable::linear(3.2e9, 1.2e9, 1.2, 0.7, 16);
    // Exactly P0.
    EXPECT_EQ(t.indexForFreq(3.2e9), 0);
    // Slightly below P15: P15 does not satisfy, so slowest >= freq.
    int idx = t.indexForFreq(1.25e9);
    EXPECT_GE(t.state(static_cast<std::size_t>(idx)).freqHz, 1.25e9);
    EXPECT_LT(idx, t.maxIndex() + 1);
    // Demand below the table minimum maps to Pmin.
    EXPECT_EQ(t.indexForFreq(0.1e9), t.maxIndex());
    // Demand above the table maximum maps to P0.
    EXPECT_EQ(t.indexForFreq(9e9), 0);
}

TEST(PStateTableTest, IndexForUtilOndemandRule)
{
    PStateTable t = PStateTable::linear(3.2e9, 1.2e9, 1.2, 0.7, 16);
    // util above up_threshold jumps to P0.
    EXPECT_EQ(t.indexForUtil(0.95, 0.8), 0);
    EXPECT_EQ(t.indexForUtil(0.80, 0.8), 0);
    // Zero utilisation gives the slowest state.
    EXPECT_EQ(t.indexForUtil(0.0, 0.8), t.maxIndex());
    // Mid utilisation gives a state whose frequency covers
    // util/up_threshold of fmax.
    int idx = t.indexForUtil(0.5, 0.8);
    EXPECT_GE(t.state(static_cast<std::size_t>(idx)).freqHz,
              3.2e9 * 0.5 / 0.8 - 1.0);
}

TEST(PStateTableTest, IndexForUtilMonotone)
{
    PStateTable t = PStateTable::linear(3.2e9, 1.2e9, 1.2, 0.7, 16);
    int prev = t.maxIndex();
    for (double util = 0.0; util <= 1.0; util += 0.05) {
        int idx = t.indexForUtil(util, 0.8);
        EXPECT_LE(idx, prev); // higher util never picks a slower state
        prev = idx;
    }
}

} // namespace
} // namespace nmapsim
