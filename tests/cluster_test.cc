/**
 * @file
 * Tests for the multi-host cluster harness (harness/cluster.hh):
 * construction-time validation, determinism, request conservation,
 * per-host heterogeneity, dispatch weighting/packing semantics, and
 * the cluster config round-trip (harness/cluster_io.hh).
 *
 * Runs use short windows and low load: the point is end-to-end
 * wiring and accounting, not steady-state policy behaviour (the bench
 * ext_cluster covers that at scale).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/cluster.hh"
#include "harness/cluster_io.hh"
#include "sim/logging.hh"

namespace nmapsim {
namespace {

/** A small, fast cluster: 2 hosts, low load, fixed-threshold-free
 *  policies, a drain window long enough for exact conservation. */
ClusterConfig
smallCluster()
{
    ClusterConfig cfg;
    cfg.base.app = AppProfile::memcached();
    cfg.base.load = LoadLevel::kLow;
    cfg.base.freqPolicy = "performance";
    cfg.base.warmup = milliseconds(2);
    cfg.base.duration = milliseconds(10);
    cfg.base.seed = 7;
    cfg.numHosts = 2;
    cfg.dispatch = "round-robin";
    cfg.drain = milliseconds(5);
    return cfg;
}

TEST(ClusterTest, DeterministicForFixedConfigAndSeed)
{
    ClusterConfig cfg = smallCluster();
    ClusterResult a = ClusterExperiment(cfg).run();
    ClusterResult b = ClusterExperiment(cfg).run();

    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.p99, b.p99);
    EXPECT_EQ(a.maxLatency, b.maxLatency);
    EXPECT_EQ(a.meanLatency, b.meanLatency);
    EXPECT_EQ(a.energyJoules, b.energyJoules);
    EXPECT_EQ(a.requestsSent, b.requestsSent);
    EXPECT_EQ(a.responsesReceived, b.responsesReceived);
    ASSERT_EQ(a.hosts.size(), b.hosts.size());
    for (std::size_t i = 0; i < a.hosts.size(); ++i) {
        EXPECT_EQ(a.hosts[i].served, b.hosts[i].served);
        EXPECT_EQ(a.hosts[i].energyJoules, b.hosts[i].energyJoules);
    }

    // A different seed produces a different packet history.
    cfg.base.seed = 8;
    ClusterResult c = ClusterExperiment(cfg).run();
    EXPECT_NE(a.requestsSent, c.requestsSent);
}

TEST(ClusterTest, ConservesRequestsThroughTheSwitch)
{
    ClusterConfig cfg = smallCluster();
    ClusterResult r = ClusterExperiment(cfg).run();

    EXPECT_GT(r.requestsSent, 0u);
    // Unbounded queues + drain window: nothing may be lost anywhere.
    EXPECT_EQ(r.responsesReceived, r.requestsSent);
    EXPECT_EQ(r.requestsForwarded, r.requestsSent);
    EXPECT_EQ(r.responsesReturned, r.requestsSent);
    EXPECT_EQ(r.switchPortDrops, 0u);
    EXPECT_EQ(r.hostNicDrops, 0u);
    EXPECT_EQ(r.strayResponses, 0u);

    // Per-host attribution adds back up to the total.
    std::uint64_t served = 0;
    for (const ClusterHostResult &host : r.hosts)
        served += host.served;
    EXPECT_EQ(served, r.requestsSent);
}

TEST(ClusterTest, MultipleClientGroupsSplitTheLoad)
{
    ClusterConfig cfg = smallCluster();
    cfg.clientGroups = 3;
    ClusterResult r = ClusterExperiment(cfg).run();
    EXPECT_GT(r.requestsSent, 0u);
    EXPECT_EQ(r.responsesReceived, r.requestsSent);
    EXPECT_EQ(r.strayResponses, 0u);
}

TEST(ClusterTest, HeterogeneousPerHostPolicies)
{
    ClusterConfig cfg = smallCluster();
    cfg.hosts.resize(2);
    cfg.hosts[0].freqPolicy = "performance";
    cfg.hosts[1].freqPolicy = "powersave";
    cfg.hosts[1].idlePolicy = "disable";

    ClusterExperiment exp(cfg);
    EXPECT_EQ(exp.hostConfig(0).freqPolicy, "performance");
    EXPECT_EQ(exp.hostConfig(1).freqPolicy, "powersave");
    EXPECT_EQ(exp.hostConfig(1).idlePolicy, "disable");

    ClusterResult r = exp.run();
    ASSERT_EQ(r.hosts.size(), 2u);
    EXPECT_EQ(r.hosts[0].freqPolicy, "performance");
    EXPECT_EQ(r.hosts[1].freqPolicy, "powersave");
    EXPECT_EQ(r.hosts[1].idlePolicy, "disable");
    EXPECT_GT(r.hosts[0].served, 0u);
    EXPECT_GT(r.hosts[1].served, 0u);
    // Round-robin splits evenly, so the P0-pinned host can only burn
    // at least as much energy as the powersave host.
    EXPECT_GE(r.hosts[0].energyJoules, r.hosts[1].energyJoules);
}

TEST(ClusterTest, PerHostParamOverlayReachesTheHostConfig)
{
    ClusterConfig cfg = smallCluster();
    cfg.base.params.set("nmap.ni_th", 1.0);
    cfg.hosts.resize(2);
    cfg.hosts[1].params.set("nmap.ni_th", 9.0);

    ClusterExperiment exp(cfg);
    EXPECT_EQ(exp.hostConfig(0).params.getDouble("nmap.ni_th", 0.0),
              1.0);
    EXPECT_EQ(exp.hostConfig(1).params.getDouble("nmap.ni_th", 0.0),
              9.0);
}

TEST(ClusterTest, DispatchWeightsSkewServedCounts)
{
    ClusterConfig cfg = smallCluster();
    cfg.dispatch = "round-robin";
    cfg.hosts.resize(2);
    cfg.hosts[0].weight = 3.0;
    cfg.hosts[1].weight = 1.0;
    ClusterResult r = ClusterExperiment(cfg).run();
    ASSERT_EQ(r.hosts.size(), 2u);
    EXPECT_GT(r.hosts[0].served, 2 * r.hosts[1].served);
    EXPECT_GT(r.hosts[1].served, 0u);
}

TEST(ClusterTest, PowerPackLeavesTheSpareHostUntouched)
{
    ClusterConfig cfg = smallCluster();
    cfg.dispatch = "power-pack";
    // A knee the low load can never reach: everything packs onto
    // host 0 and host 1 sees zero traffic.
    cfg.base.params.set("dispatch.pack_limit", 1e9);
    ClusterResult r = ClusterExperiment(cfg).run();
    ASSERT_EQ(r.hosts.size(), 2u);
    EXPECT_EQ(r.responsesReceived, r.requestsSent);
    EXPECT_GT(r.hosts[0].served, 0u);
    EXPECT_EQ(r.hosts[1].served, 0u);
    EXPECT_EQ(r.hosts[1].nicRx, 0u);
    EXPECT_LT(r.hosts[1].energyJoules, r.hosts[0].energyJoules);
}

TEST(ClusterTest, RejectsInvalidConfigs)
{
    {
        ClusterConfig cfg = smallCluster();
        cfg.numHosts = 0;
        EXPECT_THROW(ClusterExperiment{cfg}, FatalError);
    }
    {
        ClusterConfig cfg = smallCluster();
        cfg.hosts.resize(3); // != numHosts
        EXPECT_THROW(ClusterExperiment{cfg}, FatalError);
    }
    {
        ClusterConfig cfg = smallCluster();
        cfg.hosts.resize(2);
        cfg.hosts[1].weight = 0.0;
        EXPECT_THROW(ClusterExperiment{cfg}, FatalError);
    }
    {
        ClusterConfig cfg = smallCluster();
        cfg.clientGroups = 0;
        EXPECT_THROW(ClusterExperiment{cfg}, FatalError);
    }
    {
        ClusterConfig cfg = smallCluster();
        cfg.base.numConnections =
            static_cast<int>(kFlowSpaceStride);
        EXPECT_THROW(ClusterExperiment{cfg}, FatalError);
    }
    {
        ClusterConfig cfg = smallCluster();
        cfg.dispatch = "no-such-dispatch";
        EXPECT_THROW(ClusterExperiment{cfg}, FatalError);
    }
    {
        ClusterConfig cfg = smallCluster();
        cfg.base.loadSchedule.push_back(
            {milliseconds(1), cfg.base.app.level(LoadLevel::kLow)});
        EXPECT_THROW(ClusterExperiment{cfg}, FatalError);
    }
}

TEST(ClusterTest, ConfigSurvivesThePrintParseRoundTrip)
{
    ClusterConfig cfg = smallCluster();
    cfg.numHosts = 3;
    cfg.dispatch = "consistent-hash";
    cfg.clientGroups = 2;
    cfg.fabric.portQueueLimit = 128;
    cfg.fabric.fabricLatency = microseconds(3);
    cfg.hosts.resize(3);
    cfg.hosts[0].freqPolicy = "ondemand";
    cfg.hosts[1].weight = 2.5;
    cfg.hosts[2].idlePolicy = "teo";
    cfg.hosts[2].params.set("nmap.ni_th", 4.0);
    cfg.base.params.set("dispatch.vnodes", 32);

    ClusterConfig parsed = parseClusterConfig(printClusterConfig(cfg));
    EXPECT_EQ(parsed, cfg);
}

TEST(ClusterTest, ClusterRecordCarriesPerHostColumns)
{
    ClusterConfig cfg = smallCluster();
    ClusterResult r = ClusterExperiment(cfg).run();
    ResultWriter writer;
    appendClusterResultRecord(writer, cfg, r);
    std::ostringstream os;
    writer.writeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"dispatch\""), std::string::npos);
    EXPECT_NE(json.find("host0_served"), std::string::npos);
    EXPECT_NE(json.find("host1_energy_j"), std::string::npos);
    EXPECT_NE(json.find("switch_port_drops"), std::string::npos);
}

} // namespace
} // namespace nmapsim
