/**
 * @file
 * Unit tests for the Parties baseline (slack-driven long-term DVFS).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/parties.hh"
#include "cpu/core.hh"
#include "net/wire.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "workload/client.hh"

namespace nmapsim {
namespace {

class PartiesTest : public ::testing::Test
{
  protected:
    PartiesTest()
        : wire_(eq_), client_(eq_, wire_, AppProfile::memcached(), 4)
    {
        wire_.setSink([](const Packet &) {});
        for (int i = 0; i < 2; ++i) {
            cores_.push_back(std::make_unique<Core>(
                i, eq_, CpuProfile::xeonGold6134(), rng_));
            ptrs_.push_back(cores_.back().get());
        }
        config_.interval = milliseconds(500);
        config_.slo = milliseconds(1);
    }

    /** Inject a completed response with the given latency. */
    void
    observeLatency(Tick latency)
    {
        Packet p;
        p.kind = Packet::Kind::kResponse;
        p.sendTime = eq_.now() - latency;
        client_.onResponse(p);
    }

    EventQueue eq_;
    Rng rng_{5};
    Wire wire_;
    Client client_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<Core *> ptrs_;
    PartiesConfig config_;
};

TEST_F(PartiesTest, StartsMidRange)
{
    PartiesGovernor parties(eq_, ptrs_, client_, config_);
    parties.start();
    eq_.runUntil(milliseconds(1));
    int mid = ptrs_[0]->profile().pstates.maxIndex() / 2;
    EXPECT_EQ(parties.chipPState(), mid);
    EXPECT_EQ(ptrs_[0]->pstateIndex(), mid);
    EXPECT_EQ(ptrs_[1]->pstateIndex(), mid);
}

TEST_F(PartiesTest, SloViolationRaisesVf)
{
    PartiesGovernor parties(eq_, ptrs_, client_, config_);
    parties.start();
    eq_.runUntil(milliseconds(400));
    int before = parties.chipPState();
    // P99 = 3x SLO: strong violation.
    for (int i = 0; i < 100; ++i)
        observeLatency(milliseconds(3));
    eq_.runUntil(milliseconds(600)); // decision at 500 ms
    EXPECT_LT(parties.chipPState(), before);
    EXPECT_LT(parties.lastSlack(), 0.0);
}

TEST_F(PartiesTest, SevereViolationStepsFaster)
{
    PartiesGovernor parties(eq_, ptrs_, client_, config_);
    parties.start();
    eq_.runUntil(milliseconds(400));
    int before = parties.chipPState();
    for (int i = 0; i < 100; ++i)
        observeLatency(milliseconds(10)); // 10x SLO
    eq_.runUntil(milliseconds(600));
    // Multiple steps at once for a big violation.
    EXPECT_LE(parties.chipPState(), before - 2);
}

TEST_F(PartiesTest, ComfortableSlackStepsDown)
{
    PartiesGovernor parties(eq_, ptrs_, client_, config_);
    parties.start();
    eq_.runUntil(milliseconds(400));
    int before = parties.chipPState();
    for (int i = 0; i < 100; ++i)
        observeLatency(microseconds(50)); // tiny latency, big slack
    eq_.runUntil(milliseconds(600));
    EXPECT_EQ(parties.chipPState(), before + 1);
}

TEST_F(PartiesTest, TightButMetSloHolds)
{
    PartiesGovernor parties(eq_, ptrs_, client_, config_);
    parties.start();
    eq_.runUntil(milliseconds(400));
    int before = parties.chipPState();
    // P99 at 70% of SLO: inside the hold band.
    for (int i = 0; i < 100; ++i)
        observeLatency(microseconds(700));
    eq_.runUntil(milliseconds(600));
    EXPECT_EQ(parties.chipPState(), before);
}

TEST_F(PartiesTest, IdleWindowsDriftDown)
{
    PartiesGovernor parties(eq_, ptrs_, client_, config_);
    parties.start();
    eq_.runUntil(milliseconds(1));
    int start = parties.chipPState();
    eq_.runUntil(milliseconds(1600)); // three empty windows
    EXPECT_EQ(parties.chipPState(), start + 3);
}

TEST_F(PartiesTest, DecisionsOnlyEveryInterval)
{
    PartiesGovernor parties(eq_, ptrs_, client_, config_);
    parties.start();
    eq_.runUntil(milliseconds(1));
    int start = parties.chipPState();
    for (int i = 0; i < 100; ++i)
        observeLatency(milliseconds(5));
    // Violation data present but no decision until 500 ms: the
    // long-interval weakness Fig. 16 demonstrates.
    eq_.runUntil(milliseconds(499));
    EXPECT_EQ(parties.chipPState(), start);
}

} // namespace
} // namespace nmapsim
