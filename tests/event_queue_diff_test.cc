/**
 * @file
 * Differential test pinning the calendar EventQueue to the reference
 * binary-heap implementation it replaced.
 *
 * ReferenceEventQueue below is the old production queue, preserved
 * verbatim (token-based lazy deschedule over a std::priority_queue)
 * with the same (tick, priority, insertion sequence) ordering contract.
 * Both queues are driven through identical seeded operation scripts —
 * schedules, deschedules, reschedules, steps, bounded runs, and events
 * that schedule other events from inside process() — and must produce
 * bit-identical firing order, now() progression and pending counts.
 * Any divergence in the trace log is a contract break in the calendar
 * queue, because the heap's semantics are definitionally correct.
 *
 * The scripts deliberately stress the calendar queue's corner cases:
 * same-tick priority ties and FIFO ties, stale entries from
 * deschedule/reschedule (including reschedule to the same tick),
 * schedules into the active bucket being consumed, bucket-boundary
 * ticks, far-future events that ride the overflow heap across epoch
 * re-basing, and runUntil() ends that land between events.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace nmapsim {
namespace {

/**
 * The pre-calendar EventQueue: a min-heap of (when, priority, seq)
 * entries with token-invalidation descheduling. Kept here, not in
 * src/, because its only remaining job is to define correct ordering
 * for this test. It manages its own event records (the production
 * Event bookkeeping fields are private to the production queue).
 */
class ReferenceEventQueue
{
  public:
    using Callback = std::function<void(int)>;

    /** @p priorities fixes each event id's priority for the run. */
    ReferenceEventQueue(const std::vector<int> &priorities,
                        Callback on_fire)
        : onFire_(std::move(on_fire))
    {
        events_.resize(priorities.size());
        for (std::size_t i = 0; i < priorities.size(); ++i)
            events_[i].priority = priorities[i];
    }

    Tick now() const { return now_; }
    std::size_t numPending() const { return numPending_; }
    std::uint64_t numProcessed() const { return numProcessed_; }
    bool scheduled(int id) const { return events_[id].scheduled; }

    void
    schedule(int id, Tick when)
    {
        Rec &ev = events_[id];
        ASSERT_FALSE(ev.scheduled);
        ASSERT_GE(when, now_);
        ev.when = when;
        ev.token = nextToken_++;
        ev.scheduled = true;
        heap_.push(Entry{when, ev.priority, nextSeq_++, ev.token, id});
        ++numPending_;
    }

    void
    deschedule(int id)
    {
        Rec &ev = events_[id];
        if (!ev.scheduled)
            return;
        // Lazy removal: invalidate the token; the heap entry is
        // dropped when popped.
        ev.scheduled = false;
        ev.token = 0;
        --numPending_;
    }

    void
    reschedule(int id, Tick when)
    {
        deschedule(id);
        schedule(id, when);
    }

    bool
    step()
    {
        while (!heap_.empty()) {
            Entry e = heap_.top();
            heap_.pop();
            Rec &ev = events_[e.id];
            if (!ev.scheduled || ev.token != e.token)
                continue; // stale entry from a deschedule/reschedule
            now_ = e.when;
            ev.scheduled = false;
            ev.token = 0;
            --numPending_;
            ++numProcessed_;
            onFire_(e.id);
            return true;
        }
        return false;
    }

    void
    runUntil(Tick end)
    {
        while (!heap_.empty()) {
            const Entry &top = heap_.top();
            const Rec &ev = events_[top.id];
            if (!ev.scheduled || ev.token != top.token) {
                heap_.pop();
                continue;
            }
            if (top.when > end)
                break;
            step();
        }
        if (now_ < end)
            now_ = end;
    }

  private:
    struct Rec
    {
        Tick when = 0;
        std::uint64_t token = 0;
        int priority = Event::kDefaultPriority;
        bool scheduled = false;
    };

    struct Entry
    {
        Tick when;
        int priority;
        std::uint64_t seq;
        std::uint64_t token;
        int id;

        bool
        operator>(const Entry &o) const
        {
            if (when != o.when)
                return when > o.when;
            if (priority != o.priority)
                return priority > o.priority;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>>
        heap_;
    std::vector<Rec> events_;
    Callback onFire_;
    Tick now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t nextToken_ = 1;
    std::size_t numPending_ = 0;
    std::uint64_t numProcessed_ = 0;
};

/** Adapter giving the production EventQueue the same id-based API. */
class CalendarRig
{
  public:
    using Callback = std::function<void(int)>;

    CalendarRig(const std::vector<int> &priorities, Callback on_fire)
        : onFire_(std::move(on_fire))
    {
        events_.reserve(priorities.size());
        for (std::size_t i = 0; i < priorities.size(); ++i)
            events_.push_back(std::make_unique<DiffEvent>(
                *this, static_cast<int>(i), priorities[i]));
    }

    ~CalendarRig()
    {
        for (auto &ev : events_)
            eq_.deschedule(ev.get());
    }

    Tick now() const { return eq_.now(); }
    std::size_t numPending() const { return eq_.numPending(); }
    std::uint64_t numProcessed() const { return eq_.numProcessed(); }
    bool scheduled(int id) const { return events_[id]->scheduled(); }

    void schedule(int id, Tick when) { eq_.schedule(events_[id].get(), when); }
    void deschedule(int id) { eq_.deschedule(events_[id].get()); }
    void reschedule(int id, Tick when)
    {
        eq_.reschedule(events_[id].get(), when);
    }
    bool step() { return eq_.step(); }
    void runUntil(Tick end) { eq_.runUntil(end); }

  private:
    class DiffEvent : public Event
    {
      public:
        DiffEvent(CalendarRig &rig, int id, int priority)
            : Event(priority), rig_(rig), id_(id)
        {
        }

        void process() override { rig_.onFire_(id_); }
        std::string name() const override { return "diff"; }

      private:
        CalendarRig &rig_;
        int id_;
    };

    EventQueue eq_;
    std::vector<std::unique_ptr<DiffEvent>> events_;
    Callback onFire_;
};

/** Priorities with deliberate duplicates so seq breaks most ties. */
std::vector<int>
makePriorities(int count, Rng &rng)
{
    static const int kChoices[] = {Event::kHighPriority,
                                   Event::kDefaultPriority,
                                   Event::kDefaultPriority,
                                   Event::kDefaultPriority,
                                   Event::kLowPriority};
    std::vector<int> prios(count);
    for (int &p : prios)
        p = kChoices[rng.uniformInt(0, 4)];
    return prios;
}

/**
 * Delay distribution shaped around the calendar geometry: same-tick,
 * same-bucket (< 512 ticks), in-window (< ~131 us), and far enough to
 * land in the overflow heap and force epoch re-basing.
 */
Tick
drawDelay(Rng &rng)
{
    switch (rng.uniformInt(0, 9)) {
      case 0:
        return 0; // same tick: pure priority/FIFO tie-break
      case 1:
      case 2:
        return rng.uniformInt(1, (1 << 9) - 1); // inside one bucket
      case 3:
      case 4:
      case 5:
      case 6:
        return rng.uniformInt(1, (1 << 17) - 1); // inside the window
      case 7:
        // Bucket-boundary ticks, where the slot index rolls over.
        return static_cast<Tick>(rng.uniformInt(1, 255)) << 9;
      case 8:
        return rng.uniformInt(1 << 17, 1 << 22); // overflow heap
      default:
        return rng.uniformInt(1 << 22, 1 << 27); // multi-epoch jump
    }
}

/**
 * Drive @p rig through the operation script derived from @p seed,
 * recording every fire and every post-op observable into a trace.
 * Runs on both queue implementations; the traces must match exactly.
 */
template <typename Rig>
std::string
runScript(std::uint64_t seed, int num_events, int num_ops)
{
    std::string log;
    Rng rng(seed);
    Rng prio_rng(seed ^ 0xabcdef);
    const std::vector<int> prios = makePriorities(num_events, prio_rng);

    Rig *rig_ptr = nullptr;
    Tick last_when = 0; // reuse to force exact same-tick collisions
    auto on_fire = [&](int id) {
        log += "F" + std::to_string(id) + "@" +
               std::to_string(rig_ptr->now()) + "\n";
        // Events scheduling events from inside process() is the
        // simulator's normal mode; reschedule-from-handler creates
        // entries into the bucket currently being consumed.
        if (rng.uniformInt(0, 9) < 3) {
            const int j =
                static_cast<int>(rng.uniformInt(0, num_events - 1));
            const Tick when = rig_ptr->now() + drawDelay(rng);
            if (!rig_ptr->scheduled(j)) {
                rig_ptr->schedule(j, when);
                last_when = when;
            }
        }
    };

    Rig rig(prios, on_fire);
    rig_ptr = &rig;

    for (int op = 0; op < num_ops; ++op) {
        const int id =
            static_cast<int>(rng.uniformInt(0, num_events - 1));
        switch (rng.uniformInt(0, 19)) {
          case 0:
          case 1:
          case 2:
          case 3:
          case 4: // schedule at a drawn delay
            if (!rig.scheduled(id)) {
                last_when = rig.now() + drawDelay(rng);
                rig.schedule(id, last_when);
            }
            break;
          case 5: // schedule at the exact tick of a previous schedule
            if (!rig.scheduled(id) && last_when >= rig.now())
                rig.schedule(id, last_when);
            break;
          case 6:
          case 7: // deschedule (often a no-op; that is part of the API)
            rig.deschedule(id);
            break;
          case 8:
          case 9: // reschedule regardless of current state
            last_when = rig.now() + drawDelay(rng);
            if (rig.scheduled(id))
                rig.reschedule(id, last_when);
            else
                rig.schedule(id, last_when);
            break;
          case 10: // reschedule to the same tick (fresh seq, same when)
            if (rig.scheduled(id))
                rig.reschedule(id, last_when >= rig.now()
                                       ? last_when
                                       : rig.now());
            break;
          case 11:
          case 12: // bounded run ending between events
            rig.runUntil(rig.now() + drawDelay(rng));
            break;
          default: // step
            rig.step();
            break;
        }
        log += "op" + std::to_string(op) + " now=" +
               std::to_string(rig.now()) + " pend=" +
               std::to_string(rig.numPending()) + "\n";
    }

    // Drain: every remaining event fires in contract order.
    while (rig.step()) {
        log += "drain now=" + std::to_string(rig.now()) + "\n";
    }
    log += "end now=" + std::to_string(rig.now()) + " proc=" +
           std::to_string(rig.numProcessed()) + "\n";
    return log;
}

/** First line where the two traces diverge, for readable failures. */
std::string
firstDivergence(const std::string &a, const std::string &b)
{
    std::size_t line = 1;
    std::size_t i = 0;
    const std::size_t n = std::min(a.size(), b.size());
    for (; i < n && a[i] == b[i]; ++i)
        if (a[i] == '\n')
            ++line;
    return "traces diverge at line " + std::to_string(line);
}

TEST(EventQueueDiffTest, RandomScriptsMatchReferenceHeap)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const std::string ref =
            runScript<ReferenceEventQueue>(seed, 48, 4000);
        const std::string cal = runScript<CalendarRig>(seed, 48, 4000);
        ASSERT_EQ(ref, cal) << firstDivergence(ref, cal)
                            << " (seed " << seed << ")";
        // The script must actually have exercised the queue.
        ASSERT_NE(ref.find("F"), std::string::npos);
    }
}

TEST(EventQueueDiffTest, DenseSameTickCollisions)
{
    // Few events, tiny delays: almost every tick hosts a collision, so
    // the (priority, seq) tie-break carries the whole ordering.
    for (std::uint64_t seed = 100; seed < 104; ++seed) {
        const std::string ref =
            runScript<ReferenceEventQueue>(seed, 6, 3000);
        const std::string cal = runScript<CalendarRig>(seed, 6, 3000);
        ASSERT_EQ(ref, cal) << firstDivergence(ref, cal)
                            << " (seed " << seed << ")";
    }
}

TEST(EventQueueDiffTest, ManyEventsFewOps)
{
    // Wide pending set: most events sit in the wheel or overflow for a
    // long time before firing, crossing many epoch re-basings.
    for (std::uint64_t seed = 200; seed < 203; ++seed) {
        const std::string ref =
            runScript<ReferenceEventQueue>(seed, 300, 2500);
        const std::string cal = runScript<CalendarRig>(seed, 300, 2500);
        ASSERT_EQ(ref, cal) << firstDivergence(ref, cal)
                            << " (seed " << seed << ")";
    }
}

/**
 * Deterministic pin of the tie-break contract, independent of the
 * random scripts: same tick, mixed priorities, interleaved stale
 * entries — the firing order is priority first, then insertion order,
 * with descheduled/rescheduled entries taking their *new* sequence
 * position.
 */
TEST(EventQueueDiffTest, SameTickPriorityAndStaleTokenOrder)
{
    std::vector<int> fired;
    const std::vector<int> prios = {
        Event::kLowPriority,     // id 0
        Event::kDefaultPriority, // id 1
        Event::kDefaultPriority, // id 2
        Event::kHighPriority,    // id 3
        Event::kDefaultPriority, // id 4
    };
    CalendarRig rig(prios, [&](int id) { fired.push_back(id); });

    const Tick t = 1000;
    rig.schedule(0, t);
    rig.schedule(1, t);
    rig.schedule(2, t);
    rig.schedule(3, t);
    rig.schedule(4, t);

    // Stale churn: id 1 is rescheduled to the same tick (moves behind
    // id 2 and 4 in insertion order); id 4 is descheduled entirely.
    rig.reschedule(1, t);
    rig.deschedule(4);
    EXPECT_EQ(rig.numPending(), 4u);

    rig.runUntil(t);
    EXPECT_EQ(rig.now(), t);
    // High priority first; then default-priority in insertion order
    // (2 before the rescheduled 1); low priority last; 4 never fires.
    EXPECT_EQ(fired, (std::vector<int>{3, 2, 1, 0}));
}

/** runUntil to a tick with no events still advances now() on both. */
TEST(EventQueueDiffTest, RunUntilAdvancesTimeWithEmptyWindow)
{
    std::vector<int> fired;
    CalendarRig rig({Event::kDefaultPriority},
                    [&](int id) { fired.push_back(id); });
    rig.runUntil(5'000'000);
    EXPECT_EQ(rig.now(), 5'000'000);
    // Scheduling after the jump still works (window re-based).
    rig.schedule(0, 5'000'001);
    rig.runUntil(6'000'000);
    EXPECT_EQ(fired, std::vector<int>{0});
    EXPECT_EQ(rig.now(), 6'000'000);
}

} // namespace
} // namespace nmapsim
