/**
 * @file
 * CLI-visible registry listings must never depend on hash or
 * registration order: `--list-policies`, `--list-dispatch` and the
 * "known names" part of unknown-name errors all come from the
 * registries' name listings, and those must be sorted so output is
 * byte-stable across compilers, libstdc++ versions and registration
 * link order.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cluster/dispatch.hh"
#include "cpu/cpu_profile.hh"
#include "dataplane/policy.hh"
#include "harness/experiment.hh"
#include "harness/policy_registry.hh"
#include "resilience/admission.hh"
#include "resilience/plan.hh"
#include "sim/logging.hh"

namespace nmapsim {
namespace {

void
expectSortedAndUnique(const std::vector<std::string> &names)
{
    EXPECT_FALSE(names.empty());
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end())) << "unsorted";
    EXPECT_TRUE(std::adjacent_find(names.begin(), names.end()) ==
                names.end())
        << "duplicate names";
}

TEST(RegistryOrderTest, FreqAndIdleListingsAreSorted)
{
    ensureBuiltinPolicies();
    expectSortedAndUnique(PolicyRegistry::instance().freqNames());
    expectSortedAndUnique(PolicyRegistry::instance().idleNames());
}

TEST(RegistryOrderTest, DispatchListingIsSorted)
{
    ensureBuiltinDispatchPolicies();
    expectSortedAndUnique(DispatchRegistry::instance().names());
}

TEST(RegistryOrderTest, DataplaneListingIsSorted)
{
    ensureBuiltinDataplanePolicies();
    expectSortedAndUnique(DataplanePolicyRegistry::instance().names());
}

TEST(RegistryOrderTest, AdmissionListingIsSorted)
{
    ensureBuiltinAdmissionPolicies();
    expectSortedAndUnique(AdmissionPolicyRegistry::instance().names());
}

/** The "known: a, b, c" tail of unknown-name errors lists names in
 *  sorted order, matching the listing the user is pointed at. */
void
expectKnownNamesSorted(const std::string &message,
                       const std::vector<std::string> &names)
{
    std::string::size_type prev = message.find("known: ");
    ASSERT_NE(prev, std::string::npos) << message;
    std::string::size_type last = prev;
    for (const std::string &name : names) {
        const std::string::size_type pos = message.find(name, last);
        ASSERT_NE(pos, std::string::npos)
            << "'" << name << "' missing or out of order in: "
            << message;
        last = pos;
    }
}

TEST(RegistryOrderTest, UnknownFreqPolicyErrorListsSortedNames)
{
    // End-to-end through the harness: the resolution error a user
    // actually sees must carry the sorted name list.
    ExperimentConfig cfg;
    cfg.freqPolicy = "no-such-policy";
    cfg.warmup = milliseconds(1);
    cfg.duration = milliseconds(1);
    try {
        (void)Experiment(cfg).run();
        FAIL() << "expected fatal()";
    } catch (const FatalError &e) {
        expectKnownNamesSorted(e.what(),
                               PolicyRegistry::instance().freqNames());
    }
}

TEST(RegistryOrderTest, UnknownIdlePolicyErrorListsSortedNames)
{
    ensureBuiltinPolicies();
    PolicyParams params;
    IdleContext ctx{CpuProfile::xeonGold6134(), 1, params};
    try {
        (void)PolicyRegistry::instance().makeIdle("no-such-idle", ctx);
        FAIL() << "expected fatal()";
    } catch (const FatalError &e) {
        expectKnownNamesSorted(e.what(),
                               PolicyRegistry::instance().idleNames());
    }
}

TEST(RegistryOrderTest, UnknownDataplaneErrorListsSortedNames)
{
    ensureBuiltinDataplanePolicies();
    PolicyParams params;
    DataplaneContext ctx{params};
    try {
        (void)DataplanePolicyRegistry::instance().make(
            "no-such-dataplane", ctx);
        FAIL() << "expected fatal()";
    } catch (const FatalError &e) {
        expectKnownNamesSorted(
            e.what(), DataplanePolicyRegistry::instance().names());
    }
}

TEST(RegistryOrderTest, UnknownAdmissionErrorListsSortedNames)
{
    ensureBuiltinAdmissionPolicies();
    ResiliencePlan plan;
    AdmissionContext ctx{plan};
    try {
        (void)AdmissionPolicyRegistry::instance().make(
            "no-such-admission", ctx);
        FAIL() << "expected fatal()";
    } catch (const FatalError &e) {
        expectKnownNamesSorted(
            e.what(), AdmissionPolicyRegistry::instance().names());
    }
}

TEST(RegistryOrderTest, UnknownDispatchErrorListsSortedNames)
{
    ensureBuiltinDispatchPolicies();
    try {
        DispatchContext ctx;
        ctx.numHosts = 1;
        ctx.weights = {1.0};
        (void)DispatchRegistry::instance().make("no-such-dispatch",
                                                ctx);
        FAIL() << "expected fatal()";
    } catch (const FatalError &e) {
        expectKnownNamesSorted(e.what(),
                               DispatchRegistry::instance().names());
    }
}

} // namespace
} // namespace nmapsim
