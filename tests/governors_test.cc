/**
 * @file
 * Unit tests for the cpufreq governors (static, ondemand,
 * conservative, intel_powersave).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "governors/ondemand.hh"
#include "governors/static_governors.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace nmapsim {
namespace {

class GovernorTest : public ::testing::Test
{
  protected:
    GovernorTest()
    {
        for (int i = 0; i < 2; ++i) {
            cores_.push_back(std::make_unique<Core>(
                i, eq_, CpuProfile::xeonGold6134(), rng_));
            ptrs_.push_back(cores_.back().get());
        }
    }

    void
    runTo(Tick t)
    {
        eq_.runUntil(t);
    }

    int pmin() { return ptrs_[0]->profile().pstates.maxIndex(); }

    EventQueue eq_;
    Rng rng_{3};
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<Core *> ptrs_;
};

TEST_F(GovernorTest, PerformancePinsP0)
{
    // Boot the cores into a slow state first.
    for (Core *c : ptrs_)
        c->dvfs().requestPState(pmin());
    eq_.runAll();

    PerformanceGovernor gov(ptrs_);
    gov.start();
    eq_.runAll();
    for (Core *c : ptrs_)
        EXPECT_EQ(c->pstateIndex(), 0);
}

TEST_F(GovernorTest, PowersavePinsPmin)
{
    PowersaveGovernor gov(ptrs_);
    gov.start();
    eq_.runAll();
    for (Core *c : ptrs_)
        EXPECT_EQ(c->pstateIndex(), pmin());
}

TEST_F(GovernorTest, UserspacePinsChosenState)
{
    UserspaceGovernor gov(ptrs_, 7);
    gov.start();
    eq_.runAll();
    EXPECT_EQ(ptrs_[0]->pstateIndex(), 7);
    gov.setPState(3);
    eq_.runAll();
    EXPECT_EQ(ptrs_[0]->pstateIndex(), 3);
}

TEST_F(GovernorTest, OndemandIdleCoreDropsToPmin)
{
    OndemandGovernor gov(eq_, ptrs_, {});
    gov.start();
    runTo(milliseconds(25));
    for (Core *c : ptrs_)
        EXPECT_EQ(c->pstateIndex(), pmin());
    EXPECT_DOUBLE_EQ(gov.lastUtil(0), 0.0);
}

TEST_F(GovernorTest, OndemandBusyCoreJumpsToP0)
{
    OndemandGovernor gov(eq_, ptrs_, {});
    gov.start();
    ptrs_[0]->setBusy(true); // 100% utilisation
    runTo(milliseconds(25));
    EXPECT_EQ(ptrs_[0]->pstateIndex(), 0);
    EXPECT_EQ(ptrs_[1]->pstateIndex(), pmin()); // per-core decision
    EXPECT_DOUBLE_EQ(gov.lastUtil(0), 1.0);
}

TEST_F(GovernorTest, OndemandReactionIsPeriodBounded)
{
    GovernorConfig cfg;
    cfg.samplePeriod = milliseconds(10);
    OndemandGovernor gov(eq_, ptrs_, cfg);
    gov.start();
    runTo(milliseconds(15)); // settle at Pmin
    ptrs_[0]->setBusy(true);
    // Before the next sample the state must not change: this is the
    // 10 ms blind spot Section 3.2 blames.
    runTo(milliseconds(19));
    EXPECT_EQ(ptrs_[0]->pstateIndex(), pmin());
    runTo(milliseconds(31));
    EXPECT_EQ(ptrs_[0]->pstateIndex(), 0);
}

TEST_F(GovernorTest, OndemandDisabledCoreHoldsState)
{
    OndemandGovernor gov(eq_, ptrs_, {});
    gov.start();
    gov.setEnabled(0, false);
    ptrs_[0]->dvfs().requestPState(0);
    runTo(milliseconds(25));
    // Core 0 idle but governor disabled: stays at P0.
    EXPECT_EQ(ptrs_[0]->pstateIndex(), 0);
    EXPECT_FALSE(gov.enabled(0));
    // Sampling continued: utilisation history is fresh.
    EXPECT_DOUBLE_EQ(gov.lastUtil(0), 0.0);

    gov.setEnabled(0, true);
    gov.enforceNow(0);
    runTo(eq_.now() + milliseconds(1));
    EXPECT_EQ(ptrs_[0]->pstateIndex(), pmin());
}

TEST_F(GovernorTest, OndemandProportionalRegion)
{
    OndemandGovernor gov(eq_, ptrs_, {});
    // util = 0.4 with up_threshold 0.8 -> target 0.5 * fmax = 1.6 GHz.
    int idx = gov.stateForUtil(0, 0.4);
    double f = ptrs_[0]
                   ->profile()
                   .pstates.state(static_cast<std::size_t>(idx))
                   .freqHz;
    EXPECT_GE(f, 1.6e9);
    EXPECT_LT(f, 2.0e9);
}

TEST_F(GovernorTest, ConservativeStepsOneStateAtATime)
{
    ConservativeGovernor gov(eq_, ptrs_, {});
    gov.start();
    ptrs_[0]->setBusy(true);
    runTo(milliseconds(15));
    // One sample: moved exactly one state toward P0 despite 100% util.
    EXPECT_EQ(ptrs_[0]->dvfs().targetPState(), 0 - 0 /*from boot P0*/);
    // Start from Pmin to observe stepping.
    ptrs_[1]->dvfs().requestPState(pmin());
    runTo(eq_.now() + milliseconds(1));
    ptrs_[1]->setBusy(true);
    // The first full sampling window after the load step moves one
    // state; the next window moves one more.
    Tick start = eq_.now();
    runTo(start + milliseconds(16));
    EXPECT_EQ(ptrs_[1]->dvfs().targetPState(), pmin() - 1);
    runTo(start + milliseconds(26));
    EXPECT_EQ(ptrs_[1]->dvfs().targetPState(), pmin() - 2);
}

TEST_F(GovernorTest, ConservativeStepsDownWhenIdle)
{
    ConservativeGovernor gov(eq_, ptrs_, {});
    gov.start();
    runTo(milliseconds(12));
    EXPECT_EQ(ptrs_[0]->dvfs().targetPState(), 1); // one step from P0
    runTo(milliseconds(22));
    EXPECT_EQ(ptrs_[0]->dvfs().targetPState(), 2);
}

TEST_F(GovernorTest, IntelPowersaveRampsSlowerThanOndemand)
{
    IntelPowersaveGovernor gov(eq_, ptrs_, {});
    gov.start();
    // Idle phase with the cores actually asleep, so C0 residency (the
    // governor's utilisation signal) is near zero.
    for (Core *c : ptrs_)
        c->enterSleep(CState::kC6);
    runTo(milliseconds(45));
    for (Core *c : ptrs_)
        c->wake();
    ptrs_[0]->setBusy(true);
    runTo(milliseconds(55));
    // One period after the load step: EWMA keeps it well below P0.
    EXPECT_GT(ptrs_[0]->dvfs().targetPState(), 0);
    // After several periods it converges to P0.
    runTo(milliseconds(150));
    EXPECT_EQ(ptrs_[0]->dvfs().targetPState(), 0);
}

TEST_F(GovernorTest, IntelPowersavePegsP0WhenNeverSleeping)
{
    // With C-states disabled the core is always in C0, so the
    // C0-residency utilisation reads 100% and the governor pegs P0 —
    // the paper's intel_powersave + disable observation (Section 6.2).
    IntelPowersaveGovernor gov(eq_, ptrs_, {});
    gov.start();
    runTo(milliseconds(120));
    // Idle but never sleeping: C0 residency is full.
    EXPECT_EQ(ptrs_[0]->dvfs().targetPState(), 0);
}

TEST_F(GovernorTest, IntelPowersaveDropsWhenCoresSleep)
{
    IntelPowersaveGovernor gov(eq_, ptrs_, {});
    gov.start();
    // Simulate sleeping cores: C6 residency accumulates instead of C0.
    for (Core *c : ptrs_)
        c->enterSleep(CState::kC6);
    runTo(milliseconds(120));
    EXPECT_EQ(ptrs_[0]->dvfs().targetPState(), pmin());
}

} // namespace
} // namespace nmapsim
