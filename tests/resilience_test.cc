/**
 * @file
 * Unit tests for the overload-control subsystem: ResiliencePlan
 * parsing and validation, the AdmissionPolicyRegistry and its built-in
 * gates (none, queue-deadline, token-bucket), and the CircuitBreaker
 * state machine (error-rate trip, half-open probing, probe re-lease,
 * force-open).
 */

#include <gtest/gtest.h>

#include <memory>

#include "resilience/admission.hh"
#include "resilience/breaker.hh"
#include "resilience/plan.hh"
#include "sim/logging.hh"

namespace nmapsim {
namespace {

// --- ResiliencePlan parsing ----------------------------------------

TEST(ResiliencePlanTest, NoResilienceKeysYieldsDisabledPlan)
{
    PolicyParams params;
    params.set("nmap.ni_th", "400"); // non-resilience keys are ignored
    const ResiliencePlan plan = ResiliencePlan::fromParams(params);
    EXPECT_FALSE(plan.enabled());
    EXPECT_FALSE(plan.wantsAdmission());
    EXPECT_FALSE(plan.wantsRetryBudget());
    EXPECT_FALSE(plan.wantsBreakers());
    EXPECT_FALSE(plan.wantsDeadline());
}

TEST(ResiliencePlanTest, ReadsEveryKey)
{
    PolicyParams params;
    params.set("resilience.admission", "queue-deadline");
    params.setTick("resilience.admit_target", microseconds(500));
    params.setTick("resilience.admit_interval", milliseconds(5));
    params.set("resilience.retry_budget", "0.1");
    params.set("resilience.retry_min", 4);
    params.set("resilience.retry_cap", "50");
    params.setTick("resilience.breaker_window", milliseconds(10));
    params.set("resilience.breaker_threshold", "0.4");
    params.set("resilience.breaker_min_volume", 5);
    params.setTick("resilience.breaker_open", milliseconds(2));
    params.set("resilience.breaker_trials", 2);
    params.setTick("resilience.deadline", milliseconds(3));
    const ResiliencePlan plan = ResiliencePlan::fromParams(params);
    EXPECT_TRUE(plan.enabled());
    EXPECT_EQ(plan.admission, "queue-deadline");
    EXPECT_EQ(plan.admitTarget, microseconds(500));
    EXPECT_EQ(plan.admitInterval, milliseconds(5));
    EXPECT_DOUBLE_EQ(plan.retryBudget, 0.1);
    EXPECT_EQ(plan.retryMin, 4);
    EXPECT_DOUBLE_EQ(plan.retryCap, 50.0);
    EXPECT_EQ(plan.breakerWindow, milliseconds(10));
    EXPECT_DOUBLE_EQ(plan.breakerThreshold, 0.4);
    EXPECT_EQ(plan.breakerMinVolume, 5);
    EXPECT_EQ(plan.breakerOpen, milliseconds(2));
    EXPECT_EQ(plan.breakerTrials, 2);
    EXPECT_EQ(plan.deadline, milliseconds(3));
}

TEST(ResiliencePlanTest, BreakerOpenDefaultsToWindow)
{
    PolicyParams params;
    params.setTick("resilience.breaker_window", milliseconds(7));
    const ResiliencePlan plan = ResiliencePlan::fromParams(params);
    EXPECT_TRUE(plan.wantsBreakers());
    EXPECT_EQ(plan.breakerOpen, milliseconds(7));
}

TEST(ResiliencePlanTest, UnknownResilienceKeyIsFatal)
{
    PolicyParams params;
    params.set("resilience.admision", "none"); // typo
    EXPECT_THROW(ResiliencePlan::fromParams(params), FatalError);
}

TEST(ResiliencePlanTest, AdmitKnobsWithoutAdmissionAreFatal)
{
    PolicyParams params;
    params.setTick("resilience.admit_target", microseconds(100));
    EXPECT_THROW(ResiliencePlan::fromParams(params), FatalError);
}

TEST(ResiliencePlanTest, RetryKnobsWithoutBudgetAreFatal)
{
    PolicyParams params;
    params.set("resilience.retry_min", 4);
    EXPECT_THROW(ResiliencePlan::fromParams(params), FatalError);
}

TEST(ResiliencePlanTest, BreakerKnobsWithoutWindowAreFatal)
{
    PolicyParams params;
    params.set("resilience.breaker_trials", 2);
    EXPECT_THROW(ResiliencePlan::fromParams(params), FatalError);
}

TEST(ResiliencePlanTest, TokenBucketRequiresRate)
{
    PolicyParams params;
    params.set("resilience.admission", "token-bucket");
    EXPECT_THROW(ResiliencePlan::fromParams(params), FatalError);
}

TEST(ResiliencePlanTest, RetryBudgetAboveOneIsFatal)
{
    PolicyParams params;
    params.set("resilience.retry_budget", "1.5");
    EXPECT_THROW(ResiliencePlan::fromParams(params), FatalError);
}

TEST(ResiliencePlanTest, BreakerThresholdAboveOneIsFatal)
{
    PolicyParams params;
    params.setTick("resilience.breaker_window", milliseconds(10));
    params.set("resilience.breaker_threshold", "1.5");
    EXPECT_THROW(ResiliencePlan::fromParams(params), FatalError);
}

// --- AdmissionPolicyRegistry ---------------------------------------

TEST(AdmissionRegistryTest, BuiltinsAreRegistered)
{
    ensureBuiltinAdmissionPolicies();
    AdmissionPolicyRegistry &reg = AdmissionPolicyRegistry::instance();
    EXPECT_TRUE(reg.has("none"));
    EXPECT_TRUE(reg.has("queue-deadline"));
    EXPECT_TRUE(reg.has("token-bucket"));
    EXPECT_FALSE(reg.has("nope"));
    EXPECT_FALSE(reg.help("queue-deadline").empty());
}

TEST(AdmissionRegistryTest, NamesAreSorted)
{
    ensureBuiltinAdmissionPolicies();
    const std::vector<std::string> names =
        AdmissionPolicyRegistry::instance().names();
    ASSERT_GE(names.size(), 3u);
    for (std::size_t i = 1; i < names.size(); ++i)
        EXPECT_LT(names[i - 1], names[i]);
}

TEST(AdmissionRegistryTest, UnknownNameIsFatalAndListsKnown)
{
    ensureBuiltinAdmissionPolicies();
    ResiliencePlan plan;
    try {
        AdmissionPolicyRegistry::instance().make("nope",
                                                 AdmissionContext{plan});
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown admission policy"),
                  std::string::npos);
        EXPECT_NE(msg.find("queue-deadline"), std::string::npos);
    }
}

// --- Built-in admission gates --------------------------------------

std::unique_ptr<AdmissionPolicy>
makeGate(const ResiliencePlan &plan)
{
    ensureBuiltinAdmissionPolicies();
    return AdmissionPolicyRegistry::instance().make(
        plan.admission, AdmissionContext{plan});
}

TEST(AdmissionGateTest, NoneAdmitsAndServesEverything)
{
    ResiliencePlan plan;
    plan.admission = "none";
    std::unique_ptr<AdmissionPolicy> gate = makeGate(plan);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(gate->admit(microseconds(i), 1000));
        EXPECT_TRUE(gate->serve(seconds(1), 0));
    }
}

TEST(AdmissionGateTest, QueueDeadlineShedsSustainedSojourn)
{
    ResiliencePlan plan;
    plan.admission = "queue-deadline";
    plan.admitTarget = microseconds(100);
    plan.admitInterval = milliseconds(1);
    std::unique_ptr<AdmissionPolicy> gate = makeGate(plan);

    // Sojourn below target: always served.
    for (int i = 0; i < 50; ++i) {
        const Tick now = microseconds(10) * (i + 1);
        EXPECT_TRUE(gate->serve(now, now - microseconds(50)));
    }
    // Sojourn above target must persist a full interval before the
    // first shed...
    Tick now = milliseconds(10);
    EXPECT_TRUE(gate->serve(now, now - milliseconds(2)));
    // ...still above through the interval: the next serve sheds.
    now += plan.admitInterval + 1;
    EXPECT_FALSE(gate->serve(now, now - milliseconds(2)));
    // A sub-target sojourn resets the control law.
    now += microseconds(10);
    EXPECT_TRUE(gate->serve(now, now - microseconds(10)));
    now += microseconds(10);
    EXPECT_TRUE(gate->serve(now, now - milliseconds(2)));
}

TEST(AdmissionGateTest, QueueDeadlineShedSpacingTightens)
{
    ResiliencePlan plan;
    plan.admission = "queue-deadline";
    plan.admitTarget = microseconds(100);
    plan.admitInterval = milliseconds(1);
    std::unique_ptr<AdmissionPolicy> gate = makeGate(plan);

    // Keep the queue persistently late and count sheds over a fixed
    // horizon: the inverse-sqrt law sheds more than one per interval.
    int sheds = 0;
    for (Tick now = 0; now < milliseconds(20); now += microseconds(50))
        if (!gate->serve(now, now - milliseconds(2)))
            ++sheds;
    EXPECT_GT(sheds, 20); // more than one shed per interval elapsed
}

TEST(AdmissionGateTest, TokenBucketEnforcesSustainedRate)
{
    ResiliencePlan plan;
    plan.admission = "token-bucket";
    plan.admitRate = 1000.0; // one token per millisecond
    plan.admitBurst = 2.0;
    std::unique_ptr<AdmissionPolicy> gate = makeGate(plan);

    // The bucket starts full: the burst is admitted...
    EXPECT_TRUE(gate->admit(0, 0));
    EXPECT_TRUE(gate->admit(0, 0));
    // ...then an immediate third request finds no tokens.
    EXPECT_FALSE(gate->admit(0, 0));
    // One refill period later exactly one more fits.
    EXPECT_TRUE(gate->admit(milliseconds(1), 0));
    EXPECT_FALSE(gate->admit(milliseconds(1), 0));
    // A long idle stretch caps at the burst size, not the elapsed time.
    EXPECT_TRUE(gate->admit(seconds(1), 0));
    EXPECT_TRUE(gate->admit(seconds(1), 0));
    EXPECT_FALSE(gate->admit(seconds(1), 0));
}

// --- CircuitBreaker -------------------------------------------------

BreakerConfig
testBreaker()
{
    BreakerConfig cfg;
    cfg.window = milliseconds(10);
    cfg.threshold = 0.5;
    cfg.minVolume = 4;
    cfg.openFor = milliseconds(2);
    cfg.trials = 2;
    return cfg;
}

TEST(CircuitBreakerTest, StaysClosedBelowMinVolume)
{
    CircuitBreaker breaker(testBreaker());
    // Three failures: 100% failure rate but below minVolume.
    for (int i = 0; i < 3; ++i)
        breaker.onOutcome(microseconds(i), true);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    EXPECT_TRUE(breaker.allow(microseconds(10)));
}

TEST(CircuitBreakerTest, TripsAtThresholdWithVolume)
{
    CircuitBreaker breaker(testBreaker());
    breaker.onOutcome(microseconds(1), false);
    breaker.onOutcome(microseconds(2), false);
    breaker.onOutcome(microseconds(3), true);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    breaker.onOutcome(microseconds(4), true); // 2/4 = threshold
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    EXPECT_EQ(breaker.transitions(), 1u);
    EXPECT_FALSE(breaker.allow(microseconds(5)));
    EXPECT_FALSE(breaker.wouldAllow(microseconds(5)));
}

TEST(CircuitBreakerTest, OldOutcomesAgeOutOfTheWindow)
{
    CircuitBreaker breaker(testBreaker());
    breaker.onOutcome(microseconds(1), true);
    breaker.onOutcome(microseconds(2), true);
    // Much later: the old failures have aged out, so two successes and
    // two fresh failures stay under minVolume-with-threshold.
    const Tick later = milliseconds(100);
    breaker.onOutcome(later + 1, false);
    breaker.onOutcome(later + 2, false);
    breaker.onOutcome(later + 3, false);
    breaker.onOutcome(later + 4, true);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbesThenCloses)
{
    CircuitBreaker breaker(testBreaker());
    for (int i = 0; i < 4; ++i)
        breaker.onOutcome(microseconds(i), true);
    ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

    const Tick probeAt = microseconds(4) + milliseconds(2);
    EXPECT_FALSE(breaker.allow(microseconds(5))); // still open
    EXPECT_TRUE(breaker.allow(probeAt));          // first probe
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
    EXPECT_TRUE(breaker.allow(probeAt + 1)); // second probe slot
    EXPECT_FALSE(breaker.allow(probeAt + 2)); // no third slot yet

    breaker.onOutcome(probeAt + 10, false);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
    breaker.onOutcome(probeAt + 11, false);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
    EXPECT_TRUE(breaker.allow(probeAt + 12));
    // open -> half-open -> closed on top of the original trip.
    EXPECT_EQ(breaker.transitions(), 3u);
}

TEST(CircuitBreakerTest, ProbeFailureReopens)
{
    CircuitBreaker breaker(testBreaker());
    for (int i = 0; i < 4; ++i)
        breaker.onOutcome(microseconds(i), true);
    const Tick probeAt = microseconds(4) + milliseconds(2);
    ASSERT_TRUE(breaker.allow(probeAt));
    breaker.onOutcome(probeAt + 1, true);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    EXPECT_FALSE(breaker.allow(probeAt + 2));
}

TEST(CircuitBreakerTest, SilentProbesAreReleased)
{
    CircuitBreaker breaker(testBreaker());
    for (int i = 0; i < 4; ++i)
        breaker.onOutcome(microseconds(i), true);
    const Tick probeAt = microseconds(4) + milliseconds(2);
    ASSERT_TRUE(breaker.allow(probeAt));
    ASSERT_TRUE(breaker.allow(probeAt + 1));
    // Probes never resolve (silent backend). After another openFor the
    // breaker re-leases probe slots instead of wedging half-open.
    EXPECT_FALSE(breaker.allow(probeAt + 2));
    EXPECT_TRUE(breaker.allow(probeAt + milliseconds(2)));
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreakerTest, ForceOpenBlocksImmediately)
{
    CircuitBreaker breaker(testBreaker());
    EXPECT_TRUE(breaker.allow(0));
    breaker.forceOpen(microseconds(1));
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    EXPECT_FALSE(breaker.allow(microseconds(2)));
    EXPECT_EQ(breaker.transitions(), 1u);
    // It probes again after openFor like any other trip.
    EXPECT_TRUE(
        breaker.allow(microseconds(1) + milliseconds(2)));
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
}

TEST(CircuitBreakerTest, OpenIgnoresStragglerOutcomes)
{
    CircuitBreaker breaker(testBreaker());
    for (int i = 0; i < 4; ++i)
        breaker.onOutcome(microseconds(i), true);
    ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    // In-flight responses landing after the trip don't perturb it.
    breaker.onOutcome(microseconds(10), false);
    breaker.onOutcome(microseconds(11), true);
    EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
    EXPECT_EQ(breaker.transitions(), 1u);
}

} // namespace
} // namespace nmapsim
