/**
 * @file
 * Tests for nmaplint (tools/nmaplint/): every rule fires on its
 * fixture with the right id and exit code, waivers suppress findings
 * only when they carry a reason, the helper modes behave, and — the
 * gate this whole PR exists for — the real source tree lints clean.
 *
 * The binary is exercised end-to-end via its CLI (popen), exactly as
 * CI and `make nmaplint` run it. Paths are injected by CMake:
 * NMAPLINT_BIN, LINT_FIXTURES_DIR, NMAPSIM_SOURCE_DIR.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <vector>

namespace {

struct RunResult
{
    int exitCode = -1;
    std::string out; //!< stdout only (findings); stderr is the summary
};

RunResult
run(const std::string &args)
{
    const std::string cmd =
        std::string(NMAPLINT_BIN) + " " + args + " 2>/dev/null";
    RunResult r;
    FILE *pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return r;
    std::array<char, 4096> buf;
    std::size_t n;
    while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
        r.out.append(buf.data(), n);
    const int status = pclose(pipe);
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

RunResult
lintFixture(const std::string &relPath)
{
    const std::string dir = LINT_FIXTURES_DIR;
    return run("--root " + dir + " " + dir + "/" + relPath);
}

/** Every non-empty output line, for per-finding assertions. */
std::vector<std::string>
lines(const std::string &out)
{
    std::vector<std::string> result;
    std::string::size_type start = 0;
    while (start < out.size()) {
        std::string::size_type nl = out.find('\n', start);
        if (nl == std::string::npos)
            nl = out.size();
        if (nl > start)
            result.push_back(out.substr(start, nl - start));
        start = nl + 1;
    }
    return result;
}

struct FixtureCase
{
    const char *file;
    const char *rule;
};

constexpr FixtureCase kFixtures[] = {
    {"src/assert_bare.cc", "assert-in-model"},
    {"src/nondet.cc", "nondet-source"},
    {"src/unordered_iter.cc", "unordered-iter"},
    {"src/raw_output.cc", "raw-output"},
    {"src/no_namespace.hh", "header-hygiene"},
    {"src/topology_header_bad.hh", "header-hygiene"},
    {"src/register_bad.cc", "register-hygiene"},
    {"src/register_dispatch_bad.cc", "register-hygiene"},
    {"src/register_dataplane_bad.cc", "register-hygiene"},
    {"src/bad_waiver.cc", "bad-waiver"},
};

TEST(LintTest, EachFixtureTriggersExactlyItsRule)
{
    for (const FixtureCase &fc : kFixtures) {
        SCOPED_TRACE(fc.file);
        const RunResult r = lintFixture(fc.file);
        EXPECT_EQ(r.exitCode, 1);
        const std::vector<std::string> found = lines(r.out);
        ASSERT_FALSE(found.empty());
        const std::string tag = std::string(": ") + fc.rule + ": ";
        for (const std::string &line : found) {
            EXPECT_NE(line.find(fc.file), std::string::npos) << line;
            EXPECT_NE(line.find(tag), std::string::npos)
                << "finding from an unexpected rule: " << line;
        }
    }
}

TEST(LintTest, FindingsCarryFileAndLineNumber)
{
    const RunResult r = lintFixture("src/raw_output.cc");
    ASSERT_EQ(r.exitCode, 1);
    // `file:line: rule: message`, GitHub-annotation friendly.
    EXPECT_NE(r.out.find("src/raw_output.cc:9: raw-output: "),
              std::string::npos)
        << r.out;
}

TEST(LintTest, WaivedViolationIsClean)
{
    const RunResult r = lintFixture("src/waived.cc");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_TRUE(r.out.empty()) << r.out;
}

TEST(LintTest, CleanFileIsClean)
{
    const RunResult r = lintFixture("src/clean.cc");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_TRUE(r.out.empty()) << r.out;
}

TEST(LintTest, WholeFixtureTreeReportsEveryRule)
{
    const std::string dir = LINT_FIXTURES_DIR;
    const RunResult r = run("--root " + dir + " " + dir);
    EXPECT_EQ(r.exitCode, 1);
    for (const FixtureCase &fc : kFixtures)
        EXPECT_NE(r.out.find(std::string(": ") + fc.rule + ": "),
                  std::string::npos)
            << "rule " << fc.rule << " never fired:\n"
            << r.out;
}

/** The acceptance gate: the real tree has zero unwaived findings. */
TEST(LintTest, RealSourceTreeIsClean)
{
    const RunResult r =
        run(std::string("--root ") + NMAPSIM_SOURCE_DIR);
    EXPECT_EQ(r.exitCode, 0) << r.out;
    EXPECT_TRUE(r.out.empty()) << r.out;
}

TEST(LintTest, ListRulesNamesEveryRule)
{
    const RunResult r = run("--list-rules");
    EXPECT_EQ(r.exitCode, 0);
    for (const char *rule :
         {"assert-in-model", "nondet-source", "unordered-iter",
          "raw-output", "header-hygiene", "register-hygiene"})
        EXPECT_NE(r.out.find(rule), std::string::npos) << rule;
}

TEST(LintTest, WaiveHelperPrintsExactComment)
{
    const RunResult byRule =
        run("--waive unordered-iter iteration feeds no results");
    EXPECT_EQ(byRule.exitCode, 0);
    EXPECT_EQ(byRule.out,
              "// lint: ordered-ok(iteration feeds no results)\n");

    const RunResult byToken = run("--waive nondet-ok progress timer");
    EXPECT_EQ(byToken.exitCode, 0);
    EXPECT_EQ(byToken.out, "// lint: nondet-ok(progress timer)\n");
}

TEST(LintTest, WaiveHelperDemandsReasonAndKnownRule)
{
    EXPECT_EQ(run("--waive unordered-iter").exitCode, 2);
    EXPECT_EQ(run("--waive no-such-rule why not").exitCode, 2);
}

} // namespace
