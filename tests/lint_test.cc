/**
 * @file
 * Tests for nmaplint (tools/nmaplint/): every rule fires on its
 * fixture with the right id and exit code, waivers suppress findings
 * only when they carry a reason, the helper modes behave, and — the
 * gate this whole PR exists for — the real source tree lints clean.
 *
 * The binary is exercised end-to-end via its CLI (popen), exactly as
 * CI and `make nmaplint` run it. Paths are injected by CMake:
 * NMAPLINT_BIN, LINT_FIXTURES_DIR, NMAPSIM_SOURCE_DIR.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct RunResult
{
    int exitCode = -1;
    std::string out; //!< stdout only (findings); stderr is the summary
};

RunResult
run(const std::string &args)
{
    const std::string cmd =
        std::string(NMAPLINT_BIN) + " " + args + " 2>/dev/null";
    RunResult r;
    FILE *pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return r;
    std::array<char, 4096> buf;
    std::size_t n;
    while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0)
        r.out.append(buf.data(), n);
    const int status = pclose(pipe);
    r.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
}

RunResult
lintFixture(const std::string &relPath)
{
    const std::string dir = LINT_FIXTURES_DIR;
    return run("--root " + dir + " " + dir + "/" + relPath);
}

/** Every non-empty output line, for per-finding assertions. */
std::vector<std::string>
lines(const std::string &out)
{
    std::vector<std::string> result;
    std::string::size_type start = 0;
    while (start < out.size()) {
        std::string::size_type nl = out.find('\n', start);
        if (nl == std::string::npos)
            nl = out.size();
        if (nl > start)
            result.push_back(out.substr(start, nl - start));
        start = nl + 1;
    }
    return result;
}

struct FixtureCase
{
    const char *file;
    const char *rule;
};

constexpr FixtureCase kFixtures[] = {
    {"src/assert_bare.cc", "assert-in-model"},
    {"src/nondet.cc", "nondet-source"},
    {"src/unordered_iter.cc", "unordered-iter"},
    {"src/raw_output.cc", "raw-output"},
    {"src/no_namespace.hh", "header-hygiene"},
    {"src/topology_header_bad.hh", "header-hygiene"},
    {"src/register_bad.cc", "register-hygiene"},
    {"src/register_dispatch_bad.cc", "register-hygiene"},
    {"src/register_dataplane_bad.cc", "register-hygiene"},
    {"src/register_admission_bad.cc", "register-hygiene"},
    {"src/bad_waiver.cc", "bad-waiver"},
    {"src/waived_multiline_scope.cc", "nondet-source"},
};

TEST(LintTest, EachFixtureTriggersExactlyItsRule)
{
    for (const FixtureCase &fc : kFixtures) {
        SCOPED_TRACE(fc.file);
        const RunResult r = lintFixture(fc.file);
        EXPECT_EQ(r.exitCode, 1);
        const std::vector<std::string> found = lines(r.out);
        ASSERT_FALSE(found.empty());
        const std::string tag = std::string(": ") + fc.rule + ": ";
        for (const std::string &line : found) {
            EXPECT_NE(line.find(fc.file), std::string::npos) << line;
            EXPECT_NE(line.find(tag), std::string::npos)
                << "finding from an unexpected rule: " << line;
        }
    }
}

TEST(LintTest, FindingsCarryFileAndLineNumber)
{
    const RunResult r = lintFixture("src/raw_output.cc");
    ASSERT_EQ(r.exitCode, 1);
    // `file:line: rule: message`, GitHub-annotation friendly.
    EXPECT_NE(r.out.find("src/raw_output.cc:9: raw-output: "),
              std::string::npos)
        << r.out;
}

TEST(LintTest, WaivedViolationIsClean)
{
    const RunResult r = lintFixture("src/waived.cc");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_TRUE(r.out.empty()) << r.out;
}

TEST(LintTest, CleanFileIsClean)
{
    const RunResult r = lintFixture("src/clean.cc");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_TRUE(r.out.empty()) << r.out;
}

TEST(LintTest, WaiverOnStatementFirstLineCoversContinuationLines)
{
    // The violating token sits on the continuation line of a wrapped
    // statement; the waiver trails the statement's first line.
    const RunResult r = lintFixture("src/waived_multiline.cc");
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_TRUE(r.out.empty()) << r.out;
}

TEST(LintTest, StatementWaiverDoesNotLeakIntoNextStatement)
{
    // Same shape, but a second (unwaived) statement repeats the
    // violation: exactly that one must survive.
    const RunResult r = lintFixture("src/waived_multiline_scope.cc");
    EXPECT_EQ(r.exitCode, 1);
    const std::vector<std::string> found = lines(r.out);
    ASSERT_EQ(found.size(), 1u) << r.out;
    EXPECT_NE(
        found[0].find("src/waived_multiline_scope.cc:14: nondet-source"),
        std::string::npos)
        << found[0];
}

TEST(LintTest, WholeFixtureTreeReportsEveryRule)
{
    const std::string dir = LINT_FIXTURES_DIR;
    const RunResult r = run("--root " + dir + " " + dir);
    EXPECT_EQ(r.exitCode, 1);
    for (const FixtureCase &fc : kFixtures)
        EXPECT_NE(r.out.find(std::string(": ") + fc.rule + ": "),
                  std::string::npos)
            << "rule " << fc.rule << " never fired:\n"
            << r.out;
}

/** The acceptance gate: the real tree has zero unwaived findings. */
TEST(LintTest, RealSourceTreeIsClean)
{
    const RunResult r =
        run(std::string("--root ") + NMAPSIM_SOURCE_DIR);
    EXPECT_EQ(r.exitCode, 0) << r.out;
    EXPECT_TRUE(r.out.empty()) << r.out;
}

// --- project phase ---------------------------------------------------

/** The fixture mini-repo under lint_fixtures/project: each file
 *  violates exactly one project rule. A no-path run scans the root's
 *  default dirs and enables the project phase. */
RunResult
lintProjectTree(const std::string &extraArgs = "")
{
    const std::string dir = std::string(LINT_FIXTURES_DIR) + "/project";
    return run("--root " + dir + " " + extraArgs);
}

TEST(LintTest, ProjectPhaseFiresEveryProjectRule)
{
    const RunResult r = lintProjectTree();
    EXPECT_EQ(r.exitCode, 1);
    const std::vector<std::string> found = lines(r.out);
    EXPECT_EQ(found.size(), 7u) << r.out;
    for (const char *want :
         {"src/sim/uses_harness.cc:3: layering: module 'sim' may not "
          "include 'harness/above.hh'",
          "src/sim/cycle_a.hh:5: layering: include cycle among: "
          "src/sim/cycle_a.hh, src/sim/cycle_b.hh",
          "src/net/global_state.cc:5: shared-mutable-state: mutable "
          "namespace-scope state 'int g_packetsSeen = 0'",
          "src/net/global_state.cc:10: shared-mutable-state: non-const "
          "function-local static 'static int counter = 0'",
          "src/harness/config_io.cc:12: config-doc-sync: config key "
          "'undocumented_key' is parsed here but missing",
          "README.md:13: config-doc-sync: README.md documents config "
          "key 'ghost.knob' but no code under src/ reads it",
          "src/sim/stale.cc:5: stale-waiver: waiver 'nondet-ok' (rule "
          "'nondet-source') no longer suppresses anything"})
        EXPECT_NE(r.out.find(want), std::string::npos)
            << "missing finding: " << want << "\n"
            << r.out;
}

TEST(LintTest, ExplicitPathsSkipProjectPhaseUnlessRequested)
{
    const std::string dir = std::string(LINT_FIXTURES_DIR) + "/project";
    const std::string target = dir + "/src/net/global_state.cc";
    // Per-file rules alone find nothing here...
    const RunResult perFile = run("--root " + dir + " " + target);
    EXPECT_EQ(perFile.exitCode, 0) << perFile.out;
    // ...until --project opts the run into the second phase.
    const RunResult project =
        run("--root " + dir + " --project " + target);
    EXPECT_EQ(project.exitCode, 1);
    EXPECT_NE(project.out.find("shared-mutable-state"),
              std::string::npos)
        << project.out;
}

TEST(LintTest, ParallelJobsOutputIsByteIdenticalToSerial)
{
    const RunResult serial = lintProjectTree("--jobs 1");
    const RunResult parallel = lintProjectTree("--jobs 8");
    EXPECT_EQ(serial.exitCode, parallel.exitCode);
    EXPECT_EQ(serial.out, parallel.out);
}

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

std::string
goldenPath(const std::string &name)
{
    return std::string(NMAPSIM_SOURCE_DIR) + "/tests/golden/lint/" +
           name;
}

TEST(LintTest, JsonOutputMatchesGoldenSnapshot)
{
    const RunResult r = lintProjectTree("--format json");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_EQ(r.out, readFileOrEmpty(goldenPath("project.json")));
}

TEST(LintTest, SarifOutputMatchesGoldenSnapshot)
{
    const RunResult r = lintProjectTree("--format sarif");
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_EQ(r.out, readFileOrEmpty(goldenPath("project.sarif")));
}

/** Structural validation against the SARIF 2.1.0 schema subset we
 *  emit: required top-level properties, the run/tool/driver shape,
 *  and for every result a ruleId that resolves to a declared rule, a
 *  message, and a physical location with uri + 1-based startLine. */
TEST(LintTest, SarifOutputIsSchemaValid)
{
    const RunResult r = lintProjectTree("--format sarif");
    const std::string &s = r.out;

    EXPECT_NE(
        s.find(
            "\"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\""),
        std::string::npos);
    EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(s.find("\"runs\": ["), std::string::npos);
    EXPECT_NE(s.find("\"tool\": {"), std::string::npos);
    EXPECT_NE(s.find("\"driver\": {"), std::string::npos);
    EXPECT_NE(s.find("\"name\": \"nmaplint\""), std::string::npos);
    EXPECT_NE(s.find("\"rules\": ["), std::string::npos);
    EXPECT_NE(s.find("\"results\": ["), std::string::npos);

    // Every declared rule id; every result references a declared one.
    std::vector<std::string> declared;
    std::string::size_type pos = 0;
    while ((pos = s.find("{\"id\": \"", pos)) != std::string::npos) {
        pos += 8;
        declared.push_back(s.substr(pos, s.find('"', pos) - pos));
    }
    EXPECT_FALSE(declared.empty());

    std::size_t results = 0;
    pos = 0;
    while ((pos = s.find("\"ruleId\": \"", pos)) != std::string::npos) {
        pos += 11;
        const std::string id = s.substr(pos, s.find('"', pos) - pos);
        EXPECT_NE(std::find(declared.begin(), declared.end(), id),
                  declared.end())
            << "result references undeclared rule: " << id;
        // The required result properties, in emission order.
        const std::string::size_type level = s.find("\"level\": ", pos);
        const std::string::size_type message =
            s.find("\"message\": {\"text\": ", pos);
        const std::string::size_type uri = s.find("\"uri\": ", pos);
        const std::string::size_type start =
            s.find("\"startLine\": ", pos);
        ASSERT_NE(level, std::string::npos);
        ASSERT_NE(message, std::string::npos);
        ASSERT_NE(uri, std::string::npos);
        ASSERT_NE(start, std::string::npos);
        EXPECT_GE(std::atoi(s.c_str() + start + 13), 1)
            << "startLine must be 1-based";
        ++results;
    }
    EXPECT_EQ(results, 7u) << s;
}

// --- --changed -------------------------------------------------------

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary);
    out << text;
}

int
shell(const std::string &cmd)
{
    const int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(LintTest, ChangedLintsOnlyGitModifiedFiles)
{
    const std::string dir = testing::TempDir() + "nmaplint_changed";
    ASSERT_EQ(shell("rm -rf '" + dir + "' && mkdir -p '" + dir +
                    "/src' && git -C '" + dir + "' init -q"),
              0);
    const std::string violation =
        "#include <cstdlib>\n"
        "namespace nmapsim {\n"
        "int f() { return std::rand(); }\n"
        "} // namespace nmapsim\n";
    // A committed violation is invisible to --changed...
    writeFile(dir + "/src/committed.cc", violation);
    ASSERT_EQ(shell("git -C '" + dir + "' add -A && git -C '" + dir +
                    "' -c user.name=t -c user.email=t@t commit -qm x"),
              0);
    const RunResult clean = run("--changed --root " + dir);
    EXPECT_EQ(clean.exitCode, 0);
    EXPECT_TRUE(clean.out.empty()) << clean.out;
    // ...while an untracked one is linted, and only it.
    writeFile(dir + "/src/fresh.cc", violation);
    const RunResult r = run("--changed --root " + dir);
    EXPECT_EQ(r.exitCode, 1);
    EXPECT_NE(r.out.find("src/fresh.cc:3: nondet-source"),
              std::string::npos)
        << r.out;
    EXPECT_EQ(r.out.find("committed.cc"), std::string::npos) << r.out;
}

// --- CLI surface -----------------------------------------------------

TEST(LintTest, UnknownFormatIsUsageError)
{
    EXPECT_EQ(run("--format yaml").exitCode, 2);
}

TEST(LintTest, ListRulesNamesEveryRule)
{
    const RunResult r = run("--list-rules");
    EXPECT_EQ(r.exitCode, 0);
    for (const char *rule :
         {"assert-in-model", "nondet-source", "unordered-iter",
          "raw-output", "header-hygiene", "register-hygiene",
          "layering", "shared-mutable-state", "config-doc-sync",
          "stale-waiver"})
        EXPECT_NE(r.out.find(rule), std::string::npos) << rule;
}

TEST(LintTest, WaiveHelperPrintsExactComment)
{
    const RunResult byRule =
        run("--waive unordered-iter iteration feeds no results");
    EXPECT_EQ(byRule.exitCode, 0);
    EXPECT_EQ(byRule.out,
              "// lint: ordered-ok(iteration feeds no results)\n");

    const RunResult byToken = run("--waive nondet-ok progress timer");
    EXPECT_EQ(byToken.exitCode, 0);
    EXPECT_EQ(byToken.out, "// lint: nondet-ok(progress timer)\n");
}

TEST(LintTest, WaiveHelperDemandsReasonAndKnownRule)
{
    EXPECT_EQ(run("--waive unordered-iter").exitCode, 2);
    EXPECT_EQ(run("--waive no-such-rule why not").exitCode, 2);
}

} // namespace
