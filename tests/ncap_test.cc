/**
 * @file
 * Unit tests for the NCAP baseline (chip-wide, NIC-driven DVFS).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/ncap.hh"
#include "cpu/core.hh"
#include "governors/cpuidle_policies.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace nmapsim {
namespace {

class NcapTest : public ::testing::Test
{
  protected:
    NcapTest()
    {
        for (int i = 0; i < 2; ++i) {
            cores_.push_back(std::make_unique<Core>(
                i, eq_, CpuProfile::xeonGold6134(), rng_));
            ptrs_.push_back(cores_.back().get());
        }
        nic_config_.numQueues = 2;
        nic_ = std::make_unique<Nic>(eq_, nic_config_);
        nic_->setIrqHandler([this](int q) { nic_->disableIrq(q); });
        config_.monitorPeriod = milliseconds(1);
        config_.rpsThreshold = 10e3;
    }

    /** Deliver n latency-critical requests to the NIC right now. */
    void
    burst(int n)
    {
        for (int i = 0; i < n; ++i) {
            Packet p;
            p.kind = Packet::Kind::kRequest;
            p.latencyCritical = true;
            p.sizeBytes = 128;
            p.flowHash = static_cast<std::uint32_t>(i);
            nic_->receive(p);
        }
    }

    int pmin() { return ptrs_[0]->profile().pstates.maxIndex(); }

    EventQueue eq_;
    Rng rng_{21};
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<Core *> ptrs_;
    NicConfig nic_config_;
    std::unique_ptr<Nic> nic_;
    NcapConfig config_;
};

TEST_F(NcapTest, BurstTriggersChipWideP0)
{
    NcapGovernor ncap(eq_, ptrs_, *nic_, config_);
    ncap.start();
    eq_.runUntil(milliseconds(25)); // fallback settles at Pmin
    ASSERT_EQ(ptrs_[0]->pstateIndex(), pmin());

    burst(100); // 100 requests in 1 ms >> 10K RPS threshold
    eq_.runUntil(milliseconds(27));
    EXPECT_TRUE(ncap.burstMode());
    // Chip-wide: BOTH cores go to P0 even though RSS split the load.
    EXPECT_EQ(ptrs_[0]->pstateIndex(), 0);
    EXPECT_EQ(ptrs_[1]->pstateIndex(), 0);
}

TEST_F(NcapTest, GradualStepDownAfterBurst)
{
    NcapGovernor ncap(eq_, ptrs_, *nic_, config_);
    ncap.start();
    burst(100);
    eq_.runUntil(milliseconds(1) + microseconds(100));
    ASSERT_TRUE(ncap.burstMode());
    ASSERT_EQ(ncap.chipPState(), 0);

    // No further traffic: one chip-wide state per period.
    eq_.runUntil(milliseconds(2) + microseconds(100));
    EXPECT_EQ(ncap.chipPState(), 1);
    eq_.runUntil(milliseconds(3) + microseconds(100));
    EXPECT_EQ(ncap.chipPState(), 2);

    // Eventually reaches the utilisation level and hands back.
    eq_.runUntil(milliseconds(40));
    EXPECT_FALSE(ncap.burstMode());
    EXPECT_TRUE(ncap.fallback().enabled(0));
}

TEST_F(NcapTest, SleepDisabledDuringBurstForNcapVariant)
{
    C6OnlyIdleGovernor inner;
    SwitchableIdleGovernor switchable(inner);
    config_.disableSleepOnBurst = true;
    NcapGovernor ncap(eq_, ptrs_, *nic_, config_);
    ncap.setIdleOverride(&switchable);
    ncap.start();

    burst(100);
    eq_.runUntil(milliseconds(2));
    EXPECT_TRUE(switchable.forceAwake());
    // Deep sleep is disabled: only the C1 halt remains available.
    EXPECT_EQ(switchable.selectState(0, eq_.now()), CState::kC1);

    // After the burst drains and NCAP hands back, sleep is re-enabled.
    eq_.runUntil(milliseconds(40));
    EXPECT_FALSE(switchable.forceAwake());
}

TEST_F(NcapTest, NcapMenuKeepsSleepEnabled)
{
    C6OnlyIdleGovernor inner;
    SwitchableIdleGovernor switchable(inner);
    config_.disableSleepOnBurst = false;
    NcapGovernor ncap(eq_, ptrs_, *nic_, config_);
    ncap.setIdleOverride(&switchable);
    ncap.start();
    EXPECT_EQ(ncap.name(), "NCAP-menu");

    burst(100);
    eq_.runUntil(milliseconds(2));
    EXPECT_TRUE(ncap.burstMode());
    EXPECT_FALSE(switchable.forceAwake());
}

TEST_F(NcapTest, SubThresholdTrafficStaysWithFallback)
{
    NcapGovernor ncap(eq_, ptrs_, *nic_, config_);
    ncap.start();
    eq_.runUntil(milliseconds(25));
    burst(5); // 5 requests in 1 ms = 5K RPS < 10K threshold
    eq_.runUntil(milliseconds(30));
    EXPECT_FALSE(ncap.burstMode());
    EXPECT_EQ(ptrs_[0]->pstateIndex(), pmin());
}

TEST_F(NcapTest, NonCriticalPacketsIgnored)
{
    NcapGovernor ncap(eq_, ptrs_, *nic_, config_);
    ncap.start();
    for (int i = 0; i < 100; ++i) {
        Packet p;
        p.kind = Packet::Kind::kRequest;
        p.latencyCritical = false;
        p.sizeBytes = 128;
        nic_->receive(p);
    }
    eq_.runUntil(milliseconds(5));
    EXPECT_FALSE(ncap.burstMode());
}

TEST_F(NcapTest, SustainedLoadKeepsBurstMode)
{
    NcapGovernor ncap(eq_, ptrs_, *nic_, config_);
    ncap.start();
    // 100 requests per 0.5 ms for 10 ms.
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    for (int i = 0; i < 20; ++i) {
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [this] { burst(100); }, "burst"));
        eq_.schedule(events.back().get(), i * microseconds(500));
    }
    eq_.runUntil(milliseconds(10));
    EXPECT_TRUE(ncap.burstMode());
    EXPECT_EQ(ncap.chipPState(), 0);
    for (auto &ev : events)
        eq_.deschedule(ev.get());
}

} // namespace
} // namespace nmapsim
