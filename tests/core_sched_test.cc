/**
 * @file
 * Unit tests for the per-core scheduler: priority structure,
 * preemption/resume, frequency rescaling, idle/C-state integration and
 * ksoftirqd interplay.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "cpu/core.hh"
#include "governors/cpuidle_policies.hh"
#include "net/nic.hh"
#include "os/core_sched.hh"
#include "os/server_os.hh"
#include "sim/event_queue.hh"

namespace nmapsim {
namespace {

/** Simple test thread executing fixed-size work items. */
class WorkThread : public SimThread
{
  public:
    WorkThread(std::string name, double cycles_per_item,
               const EventQueue &eq)
        : name_(std::move(name)), cycles_(cycles_per_item), eq_(eq)
    {
    }

    void addWork(int n) { pending_ += n; }

    bool runnable() const override { return pending_ > 0; }

    double
    beginSlice() override
    {
        return cycles_;
    }

    void
    completeSlice() override
    {
        --pending_;
        ++completed_;
        completionTimes_.push_back(eq_.now());
    }

    int completed() const { return completed_; }
    const std::vector<Tick> &completionTimes() const
    {
        return completionTimes_;
    }

    std::string name() const override { return name_; }

  private:
    std::string name_;
    double cycles_;
    const EventQueue &eq_;
    int pending_ = 0;
    int completed_ = 0;
    std::vector<Tick> completionTimes_;
};

class CoreSchedTest : public ::testing::Test
{
  protected:
    CoreSchedTest()
    {
        nic_config_.numQueues = 1;
        nic_ = std::make_unique<Nic>(eq_, nic_config_);
        core_ = std::make_unique<Core>(
            0, eq_, CpuProfile::xeonGold6134(), rng_, 0.0);
        napi_ = std::make_unique<NapiContext>(eq_, *nic_, 0,
                                              os_config_);
        sched_ = std::make_unique<CoreScheduler>(*core_, *nic_, *napi_,
                                                 os_config_);
        nic_->setIrqHandler([this](int) { sched_->handleIrq(); });
        now_ = 0;
    }

    void
    runTo(Tick t)
    {
        eq_.runUntil(t);
        now_ = eq_.now();
    }

    void
    inject(int n)
    {
        for (int i = 0; i < n; ++i) {
            Packet p;
            p.kind = Packet::Kind::kRequest;
            p.sizeBytes = 128;
            nic_->receive(p);
        }
    }

    EventQueue eq_;
    Rng rng_{9};
    NicConfig nic_config_;
    OsConfig os_config_;
    std::unique_ptr<Nic> nic_;
    std::unique_ptr<Core> core_;
    std::unique_ptr<NapiContext> napi_;
    std::unique_ptr<CoreScheduler> sched_;
    Tick now_ = 0;
};

TEST_F(CoreSchedTest, StartsIdle)
{
    sched_->start();
    EXPECT_TRUE(sched_->idle());
    EXPECT_FALSE(core_->busy());
}

TEST_F(CoreSchedTest, ThreadWorkExecutesAtCoreFrequency)
{
    WorkThread t("worker", 3.2e6, eq_); // 1 ms at 3.2 GHz
    sched_->addThread(&t);
    sched_->start();
    t.addWork(1);
    sched_->threadRunnable(&t);
    runTo(milliseconds(2));
    EXPECT_EQ(t.completed(), 1);
    // Work of 3.2M cycles at 3.2 GHz takes 1 ms.
    EXPECT_EQ(sched_->slicesRun(), 1u);
    EXPECT_GE(core_->busyTime(), milliseconds(1) - 10);
}

TEST_F(CoreSchedTest, WorkSlowsDownAtLowerFrequency)
{
    core_->dvfs().requestPState(
        core_->profile().pstates.maxIndex()); // 1.2 GHz
    eq_.runAll();

    WorkThread t("worker", 1.2e6, eq_); // 1 ms at 1.2 GHz
    sched_->addThread(&t);
    sched_->start();
    t.addWork(1);
    sched_->threadRunnable(&t);
    runTo(microseconds(900));
    EXPECT_EQ(t.completed(), 0); // would already be done at 3.2 GHz
    runTo(milliseconds(1.2));
    EXPECT_EQ(t.completed(), 1);
}

TEST_F(CoreSchedTest, FrequencyChangeRescalesRunningSlice)
{
    WorkThread t("worker", 3.2e6, eq_); // 1 ms at 3.2 GHz
    sched_->addThread(&t);
    sched_->start();
    t.addWork(1);
    sched_->threadRunnable(&t);
    // Halfway through, drop to 1.2 GHz: the remaining 1.6M cycles now
    // take 1.333 ms, finishing around 0.5 + 1.333 = 1.84 ms
    // (plus the 10 us transition latency).
    runTo(microseconds(500));
    core_->dvfs().requestPState(core_->profile().pstates.maxIndex());
    runTo(milliseconds(3));
    ASSERT_EQ(t.completed(), 1);
    Tick done = t.completionTimes()[0];
    EXPECT_GT(done, milliseconds(1.7));
    EXPECT_LT(done, milliseconds(2.0));
}

TEST_F(CoreSchedTest, RoundRobinIsFairBetweenThreads)
{
    WorkThread a("a", 1e6, eq_);
    WorkThread b("b", 1e6, eq_);
    sched_->addThread(&a);
    sched_->addThread(&b);
    sched_->start();
    a.addWork(10);
    b.addWork(10);
    sched_->threadRunnable(&a);
    sched_->threadRunnable(&b);
    // After enough time for ~10 items, both made similar progress.
    runTo(microseconds(3200));
    EXPECT_GE(a.completed(), 4);
    EXPECT_GE(b.completed(), 4);
    EXPECT_LE(std::abs(a.completed() - b.completed()), 1);
}

TEST_F(CoreSchedTest, IrqPreemptsThreadAndResumesIt)
{
    WorkThread t("worker", 32e6, eq_); // 10 ms at 3.2 GHz
    sched_->addThread(&t);
    sched_->start();
    t.addWork(1);
    sched_->threadRunnable(&t);
    runTo(milliseconds(1));
    EXPECT_EQ(sched_->preemptions(), 0u);

    inject(1); // hardirq preempts the running thread
    runTo(milliseconds(2));
    EXPECT_GE(sched_->preemptions(), 1u);
    EXPECT_EQ(sched_->hardirqsHandled(), 1u);

    // The thread still completes, delayed by the packet processing.
    runTo(milliseconds(12));
    EXPECT_EQ(t.completed(), 1);
}

TEST_F(CoreSchedTest, PacketProcessingDeliversViaNapi)
{
    std::vector<Packet> delivered;
    napi_->setDeliver(
        [&](const Packet &p) { delivered.push_back(p); });
    sched_->start();
    inject(5);
    runTo(milliseconds(1));
    EXPECT_EQ(delivered.size(), 5u);
    EXPECT_TRUE(sched_->idle());
    EXPECT_TRUE(nic_->irqEnabled(0));
}

TEST_F(CoreSchedTest, SleepingCoreWakesOnIrqAndPaysPenalty)
{
    C6OnlyIdleGovernor c6;
    sched_->setIdleGovernor(&c6);
    std::vector<Tick> delivered;
    napi_->setDeliver(
        [&](const Packet &) { delivered.push_back(eq_.now()); });
    sched_->start();
    EXPECT_EQ(core_->cstates().state(), CState::kC6);

    EventFunctionWrapper send([this] { inject(1); }, "send");
    eq_.schedule(&send, milliseconds(5));
    runTo(milliseconds(6));
    ASSERT_EQ(delivered.size(), 1u);
    // Wake penalty (~27 us) delays processing past the injection time.
    EXPECT_GT(delivered[0], milliseconds(5) + microseconds(20));
    EXPECT_EQ(core_->cstates().wakeCount(CState::kC6), 1u);
}

TEST_F(CoreSchedTest, MenuPromotionDeepensLongIdle)
{
    MenuIdleGovernor menu(core_->profile(), 1);
    sched_->setIdleGovernor(&menu);
    sched_->start();
    // Seed short-idle history so menu picks C1 first.
    for (int i = 0; i < 8; ++i)
        menu.recordIdle(0, microseconds(10));
    inject(1);
    runTo(milliseconds(1));
    // Core idles again; menu picks C1, then the promotion event should
    // deepen it to C6 after the target residency.
    runTo(milliseconds(10));
    EXPECT_EQ(core_->cstates().state(), CState::kC6);
}

TEST_F(CoreSchedTest, KsoftirqdTakesOverLargeBacklog)
{
    int wakes = 0;
    int sleeps = 0;
    sched_->setKsoftirqdHooks([&] { ++wakes; }, [&] { ++sleeps; });
    sched_->start();
    inject(os_config_.napiWeight * (os_config_.maxSoftirqIters + 4));
    runTo(milliseconds(5));
    EXPECT_EQ(wakes, 1);
    EXPECT_EQ(sleeps, 1);
    EXPECT_FALSE(napi_->active());
    EXPECT_GT(napi_->pktsPollingMode(), 0u);
}

TEST_F(CoreSchedTest, KsoftirqdSharesCoreWithAppThread)
{
    WorkThread app("app", 1e6, eq_);
    sched_->addThread(&app);
    sched_->start();
    app.addWork(100);
    sched_->threadRunnable(&app);
    inject(os_config_.napiWeight * (os_config_.maxSoftirqIters + 4));
    runTo(milliseconds(2));
    // Both the app and ksoftirqd made progress: the app is not starved
    // once processing migrates to thread context.
    EXPECT_GT(app.completed(), 0);
    EXPECT_GT(napi_->pktsPollingMode(), 0u);
}

TEST_F(CoreSchedTest, BurstWhileSleepingQueuesBehindWake)
{
    C6OnlyIdleGovernor c6;
    sched_->setIdleGovernor(&c6);
    std::vector<Tick> delivered;
    napi_->setDeliver(
        [&](const Packet &) { delivered.push_back(eq_.now()); });
    sched_->start();
    // A burst of packets hits a CC6-sleeping core: all are processed
    // after a single wake penalty (no per-packet wake).
    EventFunctionWrapper send([this] { inject(10); }, "send");
    eq_.schedule(&send, milliseconds(5));
    runTo(milliseconds(6));
    EXPECT_EQ(delivered.size(), 10u);
    EXPECT_EQ(core_->cstates().wakeCount(CState::kC6), 1u);
}

TEST_F(CoreSchedTest, FrequencyDropDuringWakePenaltyIsHarmless)
{
    C6OnlyIdleGovernor c6;
    sched_->setIdleGovernor(&c6);
    std::vector<Tick> delivered;
    napi_->setDeliver(
        [&](const Packet &) { delivered.push_back(eq_.now()); });
    sched_->start();
    EventFunctionWrapper send([this] { inject(1); }, "send");
    eq_.schedule(&send, milliseconds(5));
    // Change frequency in the middle of the wake penalty window.
    EventFunctionWrapper shift(
        [this] {
            core_->dvfs().requestPState(
                core_->profile().pstates.maxIndex());
        },
        "shift");
    eq_.schedule(&shift, milliseconds(5) + microseconds(10));
    runTo(milliseconds(7));
    EXPECT_EQ(delivered.size(), 1u);
}

TEST_F(CoreSchedTest, IdleHistoryFeedsGovernor)
{
    MenuIdleGovernor menu(core_->profile(), 1);
    sched_->setIdleGovernor(&menu);
    sched_->start();
    // Several short busy periods separated by known idle gaps: the
    // governor's history must fill with those gaps.
    std::vector<std::unique_ptr<EventFunctionWrapper>> sends;
    for (int i = 0; i < 9; ++i) {
        sends.push_back(std::make_unique<EventFunctionWrapper>(
            [this] { inject(1); }, "send"));
        eq_.schedule(sends.back().get(), (i + 1) * microseconds(200));
    }
    runTo(milliseconds(3));
    // Median recent idle is ~200 us minus the ~6 us of processing.
    EXPECT_GT(menu.predictedIdle(0), microseconds(100));
    EXPECT_LT(menu.predictedIdle(0), microseconds(300));
    for (auto &ev : sends)
        eq_.deschedule(ev.get());
}

TEST_F(CoreSchedTest, SlicesAndPreemptionsCounted)
{
    WorkThread t("worker", 32e6, eq_); // 10 ms at 3.2 GHz
    sched_->addThread(&t);
    sched_->start();
    t.addWork(1);
    sched_->threadRunnable(&t);
    runTo(milliseconds(1));
    auto before = sched_->slicesRun();
    inject(1);
    runTo(milliseconds(2));
    EXPECT_GT(sched_->slicesRun(), before); // hardirq + napi slices
}

TEST_F(CoreSchedTest, BusyFlagsTrackExecution)
{
    WorkThread t("worker", 3.2e6, eq_);
    sched_->addThread(&t);
    sched_->start();
    EXPECT_FALSE(core_->busy());
    t.addWork(1);
    sched_->threadRunnable(&t);
    EXPECT_TRUE(core_->busy());
    runTo(milliseconds(2));
    EXPECT_FALSE(core_->busy());
}

} // namespace
} // namespace nmapsim
