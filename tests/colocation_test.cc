/**
 * @file
 * Integration tests for the colocation harness (two latency-critical
 * tenants sharing one server).
 */

#include <gtest/gtest.h>

#include <string>

#include "harness/colocation.hh"
#include "sim/logging.hh"

namespace nmapsim {
namespace {

ColocationConfig
pairConfig(const std::string &policy)
{
    ColocationConfig cfg;
    TenantConfig a;
    a.app = AppProfile::memcached();
    a.load = LoadLevel::kMed;
    TenantConfig b;
    b.app = AppProfile::memcached();
    b.load = LoadLevel::kLow;
    cfg.tenants = {a, b};
    cfg.freqPolicy = policy;
    cfg.params.set("nmap.ni_th", 13.0);
    cfg.params.set("nmap.cu_th", 0.49);
    cfg.warmup = milliseconds(100);
    cfg.duration = milliseconds(300);
    return cfg;
}

TEST(ColocationTest, BothTenantsServed)
{
    ColocationResult r =
        ColocationExperiment(pairConfig("performance"))
            .run();
    ASSERT_EQ(r.tenants.size(), 2u);
    EXPECT_EQ(r.nicDrops, 0u);
    for (const TenantResult &t : r.tenants) {
        EXPECT_GT(t.requestsSent, 1000u);
        EXPECT_GE(t.requestsSent, t.responsesReceived);
        EXPECT_GT(t.responsesReceived, t.requestsSent * 9 / 10);
    }
}

TEST(ColocationTest, TenantsKeepSeparateAccounting)
{
    ColocationResult r =
        ColocationExperiment(pairConfig("performance"))
            .run();
    // Tenant 0 runs the medium load, tenant 1 the low load: tenant 0
    // must have sent several times more requests.
    EXPECT_GT(r.tenants[0].requestsSent,
              r.tenants[1].requestsSent * 3);
    EXPECT_EQ(r.tenants[0].appName, "memcached");
    EXPECT_EQ(r.tenants[0].slo, milliseconds(1));
}

TEST(ColocationTest, NmapKeepsBothSlosCheaperThanPerformance)
{
    ColocationResult perf =
        ColocationExperiment(pairConfig("performance"))
            .run();
    ColocationResult nmap =
        ColocationExperiment(pairConfig("NMAP")).run();
    for (const TenantResult &t : nmap.tenants)
        EXPECT_LE(t.p99, t.slo) << t.appName;
    EXPECT_LT(nmap.energyJoules, perf.energyJoules);
}

TEST(ColocationTest, AdaptiveNeedsNoThresholds)
{
    ColocationConfig cfg = pairConfig("NMAP-adaptive");
    cfg.params.set("nmap.ni_th", 0.0); // unused by the adaptive variant
    cfg.params.set("nmap.cu_th", 0.0);
    ColocationResult r = ColocationExperiment(cfg).run();
    for (const TenantResult &t : r.tenants)
        EXPECT_LE(t.p99, t.slo * 5 / 4) << t.appName;
}

TEST(ColocationTest, DeterministicForSameSeed)
{
    ColocationConfig cfg = pairConfig("ondemand");
    ColocationResult a = ColocationExperiment(cfg).run();
    ColocationResult b = ColocationExperiment(cfg).run();
    EXPECT_EQ(a.tenants[0].p99, b.tenants[0].p99);
    EXPECT_EQ(a.tenants[1].requestsSent, b.tenants[1].requestsSent);
    EXPECT_DOUBLE_EQ(a.energyJoules, b.energyJoules);
}

TEST(ColocationTest, NmapWithoutThresholdsIsFatal)
{
    ColocationConfig cfg = pairConfig("NMAP");
    cfg.params.set("nmap.ni_th", 0.0);
    ColocationExperiment experiment(cfg);
    EXPECT_THROW(experiment.run(), FatalError);
}

TEST(ColocationTest, UnsupportedPolicyIsFatal)
{
    ColocationConfig cfg = pairConfig("Parties");
    ColocationExperiment experiment(cfg);
    EXPECT_THROW(experiment.run(), FatalError);
}

TEST(ColocationTest, InvalidTenantsRejected)
{
    ColocationConfig cfg;
    EXPECT_THROW(ColocationExperiment{cfg}, FatalError); // no tenants
    cfg = pairConfig("performance");
    cfg.tenants[0].numConnections = 0;
    EXPECT_THROW(ColocationExperiment{cfg}, FatalError);
}

TEST(ColocationTest, SingleTenantMatchesSoloBallpark)
{
    // One tenant through the colocation harness behaves like the
    // regular Experiment (same physics, different assembly).
    ColocationConfig cfg = pairConfig("performance");
    cfg.tenants.resize(1);
    ColocationResult co = ColocationExperiment(cfg).run();

    ExperimentConfig solo;
    solo.app = AppProfile::memcached();
    solo.load = LoadLevel::kMed;
    solo.freqPolicy = "performance";
    solo.warmup = cfg.warmup;
    solo.duration = cfg.duration;
    ExperimentResult se = Experiment(solo).run();

    EXPECT_NEAR(static_cast<double>(co.tenants[0].p99),
                static_cast<double>(se.p99),
                0.5 * static_cast<double>(se.p99));
    EXPECT_NEAR(co.energyJoules, se.energyJoules,
                0.2 * se.energyJoules);
}

} // namespace
} // namespace nmapsim
