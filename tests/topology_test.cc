/**
 * @file
 * Service-topology tests across all four layers: TopologyPlan parsing
 * and validation, the switch's east-west path and byte-class
 * accounting (driven directly with fake hosts), the harness's tier
 * construction/override/attribution logic, and the chaos interop —
 * a mid-chain host crash exercising tier-local ejection, reroute and
 * upstream retry amplification.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/switch.hh"
#include "cluster/topology.hh"
#include "harness/cluster.hh"
#include "harness/cluster_io.hh"
#include "net/packet.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace nmapsim {
namespace {

// --- TopologyPlan parsing -------------------------------------------

TEST(TopologyPlanTest, DisabledWithoutTopologyKeys)
{
    PolicyParams params;
    params.set("nmap.ni_th", "400");
    const TopologyPlan plan = TopologyPlan::fromParams(params);
    EXPECT_FALSE(plan.enabled());
    EXPECT_EQ(plan.numTiers(), 0);
    EXPECT_EQ(plan.totalHosts(), 0);
}

TEST(TopologyPlanTest, ParsesTiersWithDefaultsAndOverrides)
{
    PolicyParams params;
    params.set("topology.tiers", 3);
    params.set("topology.tier0.name", "lb");
    params.set("topology.tier1.hosts", 2);
    params.set("topology.tier1.dispatch", "least-outstanding");
    params.set("topology.tier1.freq_policy", "performance");
    params.set("topology.tier2.service_scale", "0.5");
    params.setTick("topology.tier2.slo", microseconds(80));
    const TopologyPlan plan = TopologyPlan::fromParams(params);

    ASSERT_TRUE(plan.enabled());
    ASSERT_EQ(plan.numTiers(), 3);
    EXPECT_EQ(plan.tiers[0].name, "lb");
    EXPECT_EQ(plan.tiers[0].hosts, 1); // default
    EXPECT_EQ(plan.tiers[1].name, "tier1"); // default name
    EXPECT_EQ(plan.tiers[1].hosts, 2);
    EXPECT_EQ(plan.tiers[1].dispatch, "least-outstanding");
    EXPECT_EQ(plan.tiers[1].freqPolicy, "performance");
    EXPECT_DOUBLE_EQ(plan.tiers[2].serviceScale, 0.5);
    EXPECT_EQ(plan.tiers[2].slo, microseconds(80));

    EXPECT_EQ(plan.totalHosts(), 4);
    EXPECT_EQ(plan.firstHostOf(0), 0);
    EXPECT_EQ(plan.firstHostOf(1), 1);
    EXPECT_EQ(plan.firstHostOf(2), 3);
    EXPECT_EQ(plan.tierOf(0), 0);
    EXPECT_EQ(plan.tierOf(1), 1);
    EXPECT_EQ(plan.tierOf(2), 1);
    EXPECT_EQ(plan.tierOf(3), 2);
}

TEST(TopologyPlanTest, RejectsMalformedTopologyKeys)
{
    auto parse = [](const std::string &key, const std::string &value) {
        PolicyParams params;
        params.set("topology.tiers", 2);
        params.set(key, value);
        return TopologyPlan::fromParams(params);
    };
    // Unknown field, misspelled tier, out-of-range index: all fatal,
    // matching the fault.* unknown-key contract.
    EXPECT_THROW(parse("topology.tier0.hostz", "3"), FatalError);
    EXPECT_THROW(parse("topology.teir0.hosts", "3"), FatalError);
    EXPECT_THROW(parse("topology.tier2.hosts", "3"), FatalError);
    EXPECT_THROW(parse("topology.tier0.hosts", "0"), FatalError);
    EXPECT_THROW(parse("topology.tier0.service_scale", "0"),
                 FatalError);
    EXPECT_THROW(parse("topology.tier1.name", "tier0"), FatalError);

    // Tier keys without a tier count are a typo, not a request for
    // zero tiers.
    PolicyParams params;
    params.set("topology.tier0.hosts", 2);
    EXPECT_THROW(TopologyPlan::fromParams(params), FatalError);
}

// --- Switch east-west path (fake hosts) -----------------------------

/** Two-tier switch driven with fake hosts: tier 0 forwards, tier 1
 *  replies. NOTE: with a health detector the switch reschedules
 *  forever, so these tests never use runAll(); here there is no
 *  detector and runAll() is safe. */
class TopologySwitchTest : public ::testing::Test
{
  protected:
    static constexpr int kHosts = 2;

    void
    makeSwitch()
    {
        std::vector<SwitchTier> tiers{
            SwitchTier{"front", 0, 1, "round-robin"},
            SwitchTier{"back", 1, 1, "round-robin"},
        };
        sw_ = std::make_unique<ClusterSwitch>(
            eq_, SwitchConfig{}, "round-robin",
            std::vector<double>(kHosts, 1.0), PolicyParams{},
            std::move(tiers));
        sw_->clientPort().setSink([this](const Packet &pkt) {
            ++clientResponses_;
            lastResponse_ = pkt;
        });
        // Tier 0's fake host completes and forwards (kind stays
        // kRequest); tier 1's replies.
        sw_->downlink(0).setSink([this](const Packet &pkt) {
            ++requestsSeen_[0];
            Packet fwd = pkt;
            fwd.sizeBytes = kRequestBytes;
            sw_->fromHost(0, fwd);
        });
        sw_->downlink(1).setSink([this](const Packet &pkt) {
            ++requestsSeen_[1];
            Packet resp = pkt;
            resp.kind = Packet::Kind::kResponse;
            resp.sizeBytes = kResponseBytes;
            sw_->fromHost(1, resp);
        });
        sw_->setHopTap([this](int host, int tier, Tick hop,
                              bool forwarded) {
            ++hopsSeen_;
            lastHopHost_ = host;
            lastHopTier_ = tier;
            lastHopForwarded_ = forwarded;
            EXPECT_GE(hop, 0);
        });
    }

    void
    offer(int n, bool control = false)
    {
        for (int i = 0; i < n; ++i) {
            events_.push_back(std::make_unique<EventFunctionWrapper>(
                [this, i, control] {
                    Packet pkt;
                    pkt.requestId =
                        static_cast<std::uint64_t>(i) + 1;
                    pkt.sizeBytes = kRequestBytes;
                    pkt.control = control;
                    sw_->fromClient(pkt);
                },
                "test.offer"));
            eq_.schedule(events_.back().get(),
                         microseconds(10) * static_cast<Tick>(i + 1));
        }
    }

    static constexpr std::uint32_t kRequestBytes = 128;
    static constexpr std::uint32_t kResponseBytes = 512;

    EventQueue eq_;
    std::unique_ptr<ClusterSwitch> sw_;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events_;
    std::uint64_t clientResponses_ = 0;
    std::uint64_t requestsSeen_[kHosts] = {0, 0};
    std::uint64_t hopsSeen_ = 0;
    int lastHopHost_ = -1;
    int lastHopTier_ = -1;
    bool lastHopForwarded_ = false;
    Packet lastResponse_;
};

TEST_F(TopologySwitchTest, ForwardsEastWestThroughTheChain)
{
    makeSwitch();
    offer(5);
    eq_.runAll();

    // Every request traversed front then back, then returned.
    EXPECT_EQ(requestsSeen_[0], 5u);
    EXPECT_EQ(requestsSeen_[1], 5u);
    EXPECT_EQ(clientResponses_, 5u);
    EXPECT_EQ(sw_->eastWestForwards(), 5u);
    EXPECT_EQ(sw_->totalForwardsReturned(), 5u);
    EXPECT_EQ(sw_->forwardsReturned(0), 5u);
    EXPECT_EQ(sw_->totalResponsesReturned(), 5u);
    EXPECT_EQ(sw_->responsesReturned(1), 5u);
    EXPECT_EQ(sw_->requestsForwarded(0), 5u);
    EXPECT_EQ(sw_->requestsForwarded(1), 5u);
    EXPECT_EQ(sw_->outstanding(0), 0u);
    EXPECT_EQ(sw_->outstanding(1), 0u);

    // The hop tap saw both hops of every request; the final hop was
    // host 1's reply.
    EXPECT_EQ(hopsSeen_, 10u);
    EXPECT_EQ(lastHopHost_, 1);
    EXPECT_EQ(lastHopTier_, 1);
    EXPECT_FALSE(lastHopForwarded_);

    // The delivered response carries the chain's addressing trail.
    EXPECT_EQ(static_cast<int>(lastResponse_.tier), 1);
    EXPECT_EQ(static_cast<int>(lastResponse_.hops), 1);

    // Byte-class split: goodput counts responses only, east-west
    // counts the forwards, control saw nothing.
    EXPECT_EQ(sw_->goodputBytes(), 5u * kResponseBytes);
    EXPECT_EQ(sw_->eastWestBytes(), 5u * kRequestBytes);
    EXPECT_EQ(sw_->controlBytes(), 0u);
}

TEST_F(TopologySwitchTest, ControlTrafficNeverCountsAsGoodput)
{
    makeSwitch();
    offer(3, /*control=*/true);
    eq_.runAll();

    EXPECT_EQ(clientResponses_, 3u);
    EXPECT_EQ(sw_->goodputBytes(), 0u);
    // Counted at client ingress, at each host return, and at client
    // egress — never in the goodput bucket.
    EXPECT_GT(sw_->controlBytes(), 0u);
}

TEST_F(TopologySwitchTest, MidChainReplyAndBadTierPanic)
{
    makeSwitch();
    // A mid-chain host replying breaks the forward-vs-reply contract.
    Packet resp;
    resp.kind = Packet::Kind::kResponse;
    EXPECT_THROW(sw_->fromHost(0, resp), PanicError);
    // A last-tier host forwarding has nowhere to go.
    Packet fwd;
    fwd.kind = Packet::Kind::kRequest;
    EXPECT_THROW(sw_->fromHost(1, fwd), PanicError);
    // Mid-chain entry (topology.tier<i>.clients) is legal as long as
    // the tier is declared; past-the-end tiers still panic.
    Packet mid;
    mid.kind = Packet::Kind::kRequest;
    mid.requestId = 99;
    mid.sizeBytes = kRequestBytes;
    mid.tier = 1;
    EXPECT_NO_THROW(sw_->fromClient(mid));
    Packet pkt;
    pkt.kind = Packet::Kind::kRequest;
    pkt.tier = 2;
    EXPECT_THROW(sw_->fromClient(pkt), PanicError);
}

TEST(TopologySwitchConfigTest, RejectsNonContiguousTiers)
{
    EventQueue eq;
    std::vector<SwitchTier> gap{
        SwitchTier{"a", 0, 1, "round-robin"},
        SwitchTier{"b", 2, 1, "round-robin"},
    };
    EXPECT_THROW(ClusterSwitch(eq, SwitchConfig{}, "round-robin",
                               std::vector<double>(3, 1.0),
                               PolicyParams{}, std::move(gap)),
                 FatalError);
    std::vector<SwitchTier> under{
        SwitchTier{"a", 0, 1, "round-robin"},
    };
    EXPECT_THROW(ClusterSwitch(eq, SwitchConfig{}, "round-robin",
                               std::vector<double>(2, 1.0),
                               PolicyParams{}, std::move(under)),
                 FatalError);
}

// --- Harness construction and attribution ---------------------------

ClusterConfig
threeTierConfig()
{
    ClusterConfig cfg;
    cfg.base.app = AppProfile::memcached();
    cfg.base.load = LoadLevel::kMed;
    cfg.base.freqPolicy = "ondemand";
    cfg.base.seed = 11;
    cfg.base.warmup = milliseconds(5);
    cfg.base.duration = milliseconds(20);
    cfg.dispatch = "round-robin";
    cfg.drain = milliseconds(20);
    cfg.base.params.set("topology.tiers", 3);
    cfg.base.params.set("topology.tier0.name", "lb");
    cfg.base.params.set("topology.tier0.service_scale", "0.25");
    cfg.base.params.set("topology.tier1.name", "app");
    cfg.base.params.set("topology.tier1.hosts", 2);
    cfg.base.params.set("topology.tier2.name", "cache");
    return cfg;
}

TEST(TopologyExperimentTest, DerivesHostsAndAppliesTierOverrides)
{
    ClusterConfig cfg = threeTierConfig();
    cfg.base.params.set("topology.tier1.freq_policy", "performance");
    cfg.base.params.set("topology.tier2.idle_policy", "c6only");
    ClusterExperiment exp(cfg);

    // numHosts is derived from the per-tier host counts (1 + 2 + 1).
    EXPECT_EQ(exp.config().numHosts, 4);
    ASSERT_TRUE(exp.topology().enabled());
    EXPECT_EQ(exp.topology().numTiers(), 3);

    // Tier overrides apply to the tier's hosts only, and the host
    // rigs never see cluster-only topology keys.
    EXPECT_EQ(exp.hostConfig(0).freqPolicy, "ondemand");
    EXPECT_EQ(exp.hostConfig(1).freqPolicy, "performance");
    EXPECT_EQ(exp.hostConfig(2).freqPolicy, "performance");
    EXPECT_EQ(exp.hostConfig(3).idlePolicy, "c6only");
    EXPECT_FALSE(exp.hostConfig(1).params.has("topology.tiers"));

    // Even SLO split by default; explicit budgets win.
    EXPECT_EQ(exp.tierSlo(0), cfg.base.app.slo / 3);
    ClusterConfig budget = threeTierConfig();
    budget.base.params.setTick("topology.tier1.slo",
                               microseconds(123));
    EXPECT_EQ(ClusterExperiment(budget).tierSlo(1), microseconds(123));
}

TEST(TopologyExperimentTest, RejectsBadTierConfigs)
{
    {
        ClusterConfig cfg = threeTierConfig();
        cfg.base.params.set("topology.tier1.dispatch", "nope");
        EXPECT_THROW(ClusterExperiment{cfg}, FatalError);
    }
    {
        ClusterConfig cfg = threeTierConfig();
        cfg.base.params.set("topology.tier0.freq_policy", "nope");
        EXPECT_THROW(ClusterExperiment{cfg}, FatalError);
    }
    {
        // Per-host override vectors must match the derived total.
        ClusterConfig cfg = threeTierConfig();
        cfg.numHosts = 2;
        cfg.hosts.resize(2);
        EXPECT_THROW(ClusterExperiment{cfg}, FatalError);
    }
    {
        // Topologies only exist behind the switch.
        ExperimentConfig cfg;
        cfg.params.set("topology.tiers", 2);
        EXPECT_THROW(Experiment{cfg}, FatalError);
    }
}

TEST(TopologyExperimentTest, AttributesPerTierLatencyAndEnergy)
{
    const ClusterResult r = ClusterExperiment(threeTierConfig()).run();

    ASSERT_EQ(r.tiers.size(), 3u);
    EXPECT_EQ(r.tiers[0].name, "lb");
    EXPECT_EQ(r.tiers[1].name, "app");
    EXPECT_EQ(r.tiers[1].hosts, 2);
    EXPECT_EQ(r.tiers[2].name, "cache");

    double share_sum = 0.0;
    double tier_energy = 0.0;
    for (const ClusterTierResult &tier : r.tiers) {
        EXPECT_GT(tier.completions, 0u);
        EXPECT_GT(tier.hopP99, 0);
        EXPECT_GE(tier.hopP99, tier.hopP50);
        EXPECT_GT(tier.slo, 0);
        share_sum += tier.p99Share;
        tier_energy += tier.energyJoules;
    }
    // Tail shares partition the summed hop p99s...
    EXPECT_NEAR(share_sum, 1.0, 1e-9);
    // ...and tier energy partitions the cluster total (up to the
    // associativity of summing the same per-host terms).
    EXPECT_NEAR(tier_energy, r.energyJoules, 1e-6);

    // Per-host attribution: mid-chain hosts forward instead of
    // serving; only the last tier serves responses.
    ASSERT_EQ(r.hosts.size(), 4u);
    EXPECT_GT(r.hosts[0].forwarded, 0u);
    EXPECT_EQ(r.hosts[0].served, 0u);
    EXPECT_EQ(r.hosts[0].tierName, "lb");
    EXPECT_GT(r.hosts[1].forwarded + r.hosts[2].forwarded, 0u);
    EXPECT_EQ(r.hosts[3].forwarded, 0u);
    EXPECT_GT(r.hosts[3].served, 0u);
    EXPECT_EQ(r.hosts[3].tier, 2);
    for (const ClusterHostResult &host : r.hosts) {
        EXPECT_GT(host.hopsCompleted, 0u);
        EXPECT_GT(host.hopP99, 0);
    }

    // End-to-end tail dominates any single hop; the per-hop sum is a
    // lower-bound decomposition of where the time goes.
    EXPECT_GE(r.p99, r.tiers[0].hopP50);
    EXPECT_GT(r.hopP99Sum, 0);
}

// --- Chaos interop: mid-chain crash ---------------------------------

/**
 * Crash one of the two app-tier hosts mid-run with the failure
 * detector armed: the detector must eject it, reroute must stay
 * inside the app tier, upstream clients must retry the written-off
 * work, and the conservation identity must stay exact through crash,
 * ejection, reroute, recovery and readmission.
 */
TEST(TopologyChaosTest, MidChainCrashEjectsTierLocallyAndRecovers)
{
    ClusterConfig cfg = threeTierConfig();
    // Affinity steering at the app tier: flow-hash keeps hashing to
    // the ejected host, so the switch's reroute path (not just the
    // policy's own health awareness) is exercised.
    cfg.base.params.set("topology.tier1.dispatch", "flow-hash");
    cfg.base.duration = milliseconds(60);
    cfg.fabric.healthInterval = milliseconds(1);
    cfg.fabric.healthTimeout = milliseconds(3);
    cfg.fabric.ejectDuration = milliseconds(8);
    cfg.base.params.set("fault.crash_host", 1); // app tier, host 1
    cfg.base.params.setTick("fault.crash_at", milliseconds(15));
    cfg.base.params.setTick("fault.recover_at", milliseconds(40));
    cfg.base.params.setTick("client.timeout", milliseconds(4));
    cfg.base.params.set("client.retries", 3);
    const ClusterResult r = ClusterExperiment(cfg).run();

    // The detector fired on the crashed host and steered around it.
    EXPECT_GE(r.ejections, 1u);
    EXPECT_GT(r.requestsRerouted, 0u);
    ASSERT_EQ(r.hosts.size(), 4u);
    // Only the crashed host is *required* to be ejected; the
    // synchronized retry storm after the crash can trip the silence
    // detector on a single-host stage too (a false positive the
    // readmission path recovers from), so no zero-assert on the
    // other hosts.
    EXPECT_GE(r.hosts[1].ejections, 1u);

    // Upstream retry amplification: the written-off work was
    // retransmitted, and the tier-local reroute kept the service up.
    EXPECT_GT(r.retransmits, 0u);
    EXPECT_GT(r.availability, 0.6);

    // Exact conservation through the whole episode.
    EXPECT_EQ(r.requestsSent, r.responsesReceived +
                                  r.requestsTimedOut +
                                  r.requestsInFlight);

    // The surviving app host absorbed the rerouted flow.
    EXPECT_GT(r.hosts[2].forwarded, r.hosts[1].forwarded);
}

// --- cluster_io: keys, round trip, record columns -------------------

TEST(TopologyIoTest, RoundTripsTopologyKeys)
{
    ClusterConfig cfg = threeTierConfig();
    cfg.numHosts = 4; // printed `hosts` must match the derived count
    const std::string text = printClusterConfig(cfg);
    const ClusterConfig parsed = parseClusterConfig(text);
    EXPECT_EQ(parsed, cfg);
}

TEST(TopologyIoTest, RejectsUnknownPerHostKeysWithLabel)
{
    ClusterConfig cfg;
    cfg.numHosts = 2;
    // Structured and cluster-scoped namespaces are not honoured per
    // host; stashing them silently in params was the old bug.
    for (const std::string key :
         {"host0.os.jiffy", "host1.nic.ring", "host0.gov.up_delay",
          "host0.topology.tiers", "host1.fault.wire_loss",
          "host0.client.retries", "host0.cluster.drain"}) {
        EXPECT_THROW(setClusterConfigValue(cfg, key, "1"), FatalError)
            << key;
    }
    // Policy tunables still overlay per host.
    EXPECT_TRUE(setClusterConfigValue(cfg, "host0.nmap.ni_th", "400"));
    ASSERT_EQ(cfg.hosts.size(), 2u);
    EXPECT_EQ(cfg.hosts[0].params.raw("nmap.ni_th"), "400");
}

TEST(TopologyIoTest, RecordCarriesPerTierColumnsOnlyWhenTiered)
{
    ClusterConfig cfg = threeTierConfig();
    const ClusterResult r = ClusterExperiment(cfg).run();
    ResultWriter writer;
    appendClusterResultRecord(writer, cfg, r);
    std::ostringstream json;
    writer.writeJson(json);
    const std::string out = json.str();
    EXPECT_NE(out.find("\"tiers\""), std::string::npos);
    EXPECT_NE(out.find("tier1_hop_p99_ns"), std::string::npos);
    EXPECT_NE(out.find("tier2_p99_share"), std::string::npos);
    EXPECT_NE(out.find("east_west_forwards"), std::string::npos);
    EXPECT_NE(out.find("goodput_bytes"), std::string::npos);
    EXPECT_NE(out.find("host0_tier_name"), std::string::npos);

    // Single-tier records must not grow any topology columns (the
    // pinned goldens depend on it).
    ClusterConfig flat;
    flat.base.app = AppProfile::memcached();
    flat.base.load = LoadLevel::kLow;
    flat.base.freqPolicy = "performance";
    flat.base.warmup = milliseconds(5);
    flat.base.duration = milliseconds(10);
    flat.numHosts = 2;
    flat.drain = milliseconds(5);
    const ClusterResult fr = ClusterExperiment(flat).run();
    ResultWriter fwriter;
    appendClusterResultRecord(fwriter, flat, fr);
    std::ostringstream fjson;
    fwriter.writeJson(fjson);
    EXPECT_EQ(fjson.str().find("east_west"), std::string::npos);
    EXPECT_EQ(fjson.str().find("tier0_"), std::string::npos);
}

} // namespace
} // namespace nmapsim
