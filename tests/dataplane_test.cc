/**
 * @file
 * Unit and rig tests for the kernel-bypass dataplane subsystem:
 * DataplanePlan parsing/validation, the policy registry and the two
 * built-in sleep policies, PollThread/BypassEngine behaviour on a
 * hand-built mini rig, and the end-to-end Experiment integration
 * (mode selection, conservation, faulted-ring interaction, rerun
 * determinism).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cpu/core.hh"
#include "dataplane/bypass.hh"
#include "dataplane/plan.hh"
#include "dataplane/policy.hh"
#include "harness/experiment.hh"
#include "net/nic.hh"
#include "os/server_os.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace nmapsim {
namespace {

// ---------------------------------------------------------------- plan

TEST(DataplanePlanTest, DefaultsToNapi)
{
    PolicyParams params;
    DataplanePlan plan = DataplanePlan::fromParams(params);
    EXPECT_FALSE(plan.bypass());
    EXPECT_EQ(plan.mode, DataplanePlan::Mode::kNapi);
}

TEST(DataplanePlanTest, ParsesBypassKeys)
{
    PolicyParams params;
    params.set("dataplane.mode", "bypass");
    params.set("dataplane.poll_cores", 2);
    params.set("dataplane.poll_batch", 64);
    params.set("dataplane.policy", "metronome");
    params.set("dataplane.sleep_armed_irq", "true");
    params.set("dataplane.rx_packet_cycles", "1000");
    params.set("dataplane.tx_completion_cycles", "80");
    DataplanePlan plan = DataplanePlan::fromParams(params);
    EXPECT_TRUE(plan.bypass());
    EXPECT_EQ(plan.pollCores, 2);
    EXPECT_EQ(plan.pollBatch, 64);
    EXPECT_EQ(plan.policy, "metronome");
    EXPECT_TRUE(plan.sleepArmedIrq);
    EXPECT_DOUBLE_EQ(plan.rxPacketCycles, 1000.0);
    EXPECT_DOUBLE_EQ(plan.txCompletionCycles, 80.0);
}

TEST(DataplanePlanTest, UnknownDataplaneKeyIsFatal)
{
    PolicyParams params;
    params.set("dataplane.mode", "bypass");
    params.set("dataplane.burst", 4); // typo'd key
    EXPECT_THROW(DataplanePlan::fromParams(params), FatalError);
}

TEST(DataplanePlanTest, BadModeIsFatal)
{
    PolicyParams params;
    params.set("dataplane.mode", "dpdk");
    EXPECT_THROW(DataplanePlan::fromParams(params), FatalError);
}

TEST(DataplanePlanTest, BypassKeysUnderNapiAreFatal)
{
    // Every non-mode key requires mode=bypass: a config that tunes the
    // bypass engine but forgot to flip the mode is an error, not a
    // silently-NAPI run.
    for (const char *key :
         {"dataplane.poll_cores", "dataplane.poll_batch",
          "dataplane.policy", "dataplane.sleep_armed_irq",
          "dataplane.rx_packet_cycles",
          "dataplane.tx_completion_cycles"}) {
        PolicyParams params;
        params.set(key, "1");
        EXPECT_THROW(DataplanePlan::fromParams(params), FatalError)
            << key;
    }
}

TEST(DataplanePlanTest, OutOfRangeValuesAreFatal)
{
    auto bypassWith = [](const std::string &key,
                         const std::string &value) {
        PolicyParams params;
        params.set("dataplane.mode", "bypass");
        params.set(key, value);
        return DataplanePlan::fromParams(params);
    };
    EXPECT_THROW(bypassWith("dataplane.poll_cores", "0"), FatalError);
    EXPECT_THROW(bypassWith("dataplane.poll_batch", "0"), FatalError);
    EXPECT_THROW(bypassWith("dataplane.policy", ""), FatalError);
    EXPECT_THROW(bypassWith("dataplane.rx_packet_cycles", "0"),
                 FatalError);
    EXPECT_THROW(bypassWith("dataplane.tx_completion_cycles", "-1"),
                 FatalError);
}

// -------------------------------------------------------- policies

TEST(DataplanePolicyRegistryTest, BuiltinsRegisteredWithHelp)
{
    ensureBuiltinDataplanePolicies();
    DataplanePolicyRegistry &reg = DataplanePolicyRegistry::instance();
    EXPECT_TRUE(reg.has("spin"));
    EXPECT_TRUE(reg.has("metronome"));
    EXPECT_FALSE(reg.help("spin").empty());
    EXPECT_FALSE(reg.help("metronome").empty());
}

TEST(DataplanePolicyRegistryTest, UnknownPolicyIsFatal)
{
    ensureBuiltinDataplanePolicies();
    PolicyParams params;
    DataplaneContext ctx{params};
    EXPECT_THROW(DataplanePolicyRegistry::instance().make("nave", ctx),
                 FatalError);
}

TEST(DataplanePolicyRegistryTest, DuplicateRegistrationIsFatal)
{
    ensureBuiltinDataplanePolicies();
    EXPECT_THROW(DataplanePolicyRegistry::instance().registerPolicy(
                     "spin",
                     [](const DataplaneContext &)
                         -> std::unique_ptr<DataplanePolicy> {
                         return nullptr;
                     }),
                 FatalError);
}

TEST(SpinPolicyTest, NeverSleeps)
{
    ensureBuiltinDataplanePolicies();
    PolicyParams params;
    DataplaneContext ctx{params};
    auto spin = DataplanePolicyRegistry::instance().make("spin", ctx);
    DataplanePollStats stats;
    EXPECT_EQ(spin->sleepAfterPoll(stats), 0);
    stats.harvestedRx = 1000;
    stats.ringOccupancy = 1000;
    EXPECT_EQ(spin->sleepAfterPoll(stats), 0);
}

TEST(MetronomePolicyTest, ConvergesTowardSetpoint)
{
    ensureBuiltinDataplanePolicies();
    PolicyParams params;
    DataplaneContext ctx{params};
    auto policy =
        DataplanePolicyRegistry::instance().make("metronome", ctx);

    // Idle ring: the sleep grows to (and clamps at) max_sleep.
    DataplanePollStats idle;
    Tick s = policy->sleepAfterPoll(idle);
    EXPECT_EQ(s, microseconds(64));

    // Sustained backlog above the setpoint: the sleep shrinks
    // multiplicatively down to min_sleep.
    DataplanePollStats busy;
    busy.harvestedRx = 32;
    busy.ringOccupancy = 64;
    Tick prev = s;
    for (int i = 0; i < 20; ++i) {
        s = policy->sleepAfterPoll(busy);
        EXPECT_LE(s, prev);
        prev = s;
    }
    EXPECT_EQ(s, microseconds(1));

    // Backlog cleared: the sleep grows again, never past max_sleep.
    for (int i = 0; i < 30; ++i)
        s = policy->sleepAfterPoll(idle);
    EXPECT_EQ(s, microseconds(64));
}

TEST(MetronomePolicyTest, TicketsDivideTheVisitGap)
{
    ensureBuiltinDataplanePolicies();
    PolicyParams params;
    params.set("metronome.tickets", 4);
    DataplaneContext ctx{params};
    auto policy =
        DataplanePolicyRegistry::instance().make("metronome", ctx);
    DataplanePollStats idle;
    // Per-thread sleep clamps at max_sleep; with 4 ticket-holders the
    // ring is visited every max_sleep / 4.
    EXPECT_EQ(policy->sleepAfterPoll(idle), microseconds(64) / 4);
}

TEST(MetronomePolicyTest, BadParamsAreFatal)
{
    ensureBuiltinDataplanePolicies();
    auto makeWith = [](const std::string &key,
                       const std::string &value) {
        PolicyParams params;
        params.set(key, value);
        DataplaneContext ctx{params};
        return DataplanePolicyRegistry::instance().make("metronome",
                                                        ctx);
    };
    EXPECT_THROW(makeWith("metronome.min_sleep", "0"), FatalError);
    EXPECT_THROW(makeWith("metronome.max_sleep", "1ns"), FatalError);
    EXPECT_THROW(makeWith("metronome.setpoint", "0"), FatalError);
    EXPECT_THROW(makeWith("metronome.grow", "1.0"), FatalError);
    EXPECT_THROW(makeWith("metronome.shrink", "1.0"), FatalError);
    EXPECT_THROW(makeWith("metronome.tickets", "0"), FatalError);
}

// -------------------------------------------------------- mini rig

/** Hand-built 4-core host (mirrors ServerOsTest) with a bypass engine
 *  in front: poll core 0 owns all four queues, cores 1-3 work. A plain
 *  struct, not a fixture, so tests can stand up twin rigs. */
struct BypassRig
{
    void
    build(const PolicyParams &params)
    {
        for (int i = 0; i < 4; ++i) {
            cores_.push_back(std::make_unique<Core>(
                i, eq_, CpuProfile::xeonGold6134(), rng_));
            ptrs_.push_back(cores_.back().get());
        }
        nic_config_.numQueues = 4;
        nic_ = std::make_unique<Nic>(eq_, nic_config_);
        os_ = std::make_unique<ServerOs>(ptrs_, *nic_, OsConfig{});
        os_->setDeliver([this](int core, const Packet &p) {
            delivered_.push_back({core, p.flowHash});
        });
        plan_ = DataplanePlan::fromParams(params);
        engine_ = std::make_unique<BypassEngine>(*os_, *nic_, plan_,
                                                 params);
        os_->start();
        engine_->start();
    }

    static PolicyParams
    bypassParams(const std::string &policy)
    {
        PolicyParams params;
        params.set("dataplane.mode", "bypass");
        params.set("dataplane.policy", policy);
        return params;
    }

    void
    sendToFlow(std::uint32_t flow)
    {
        Packet p;
        p.kind = Packet::Kind::kRequest;
        p.flowHash = flow;
        p.sizeBytes = 128;
        nic_->receive(p);
    }

    EventQueue eq_;
    Rng rng_{55};
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<Core *> ptrs_;
    NicConfig nic_config_;
    std::unique_ptr<Nic> nic_;
    std::unique_ptr<ServerOs> os_;
    DataplanePlan plan_;
    std::unique_ptr<BypassEngine> engine_;
    std::vector<std::pair<int, std::uint32_t>> delivered_;
};

TEST(BypassRigTest, RequiresBypassModeAndAWorkerCore)
{
    BypassRig rig;
    PolicyParams napi;
    rig.build(BypassRig::bypassParams("spin"));
    EXPECT_THROW(BypassEngine(*rig.os_, *rig.nic_,
                              DataplanePlan::fromParams(napi), napi),
                 FatalError);

    PolicyParams greedy = BypassRig::bypassParams("spin");
    greedy.set("dataplane.poll_cores", 4); // all 4 cores polling
    EXPECT_THROW(BypassEngine(*rig.os_, *rig.nic_,
                              DataplanePlan::fromParams(greedy),
                              greedy),
                 FatalError);
}

TEST(BypassRigTest, DeliversOnlyToWorkerCores)
{
    BypassRig rig;
    rig.build(BypassRig::bypassParams("spin"));
    for (std::uint32_t flow = 0; flow < 32; ++flow)
        rig.sendToFlow(flow);
    rig.eq_.runUntil(milliseconds(1));
    ASSERT_EQ(rig.delivered_.size(), 32u);
    for (const auto &[core, flow] : rig.delivered_) {
        // Poll cores never run application work; the worker is picked
        // by flow hash over the non-poll cores.
        EXPECT_GE(core, rig.engine_->pollCores());
        EXPECT_EQ(core,
                  rig.engine_->pollCores() +
                      static_cast<int>(
                          flow % static_cast<std::uint32_t>(
                                     rig.engine_->workerCores())));
    }
}

TEST(BypassRigTest, NapiStaysColdAndConservationHolds)
{
    BypassRig rig;
    rig.build(BypassRig::bypassParams("spin"));
    for (std::uint32_t flow = 0; flow < 100; ++flow)
        rig.sendToFlow(flow);
    rig.eq_.runUntil(milliseconds(2));

    // Interrupt-mode NAPI never ran: no hardirq-driven napiSchedule,
    // no softirq sessions, zero packets in either NAPI mode.
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(rig.os_->napi(i).pktsInterruptMode(), 0u);
        EXPECT_EQ(rig.os_->napi(i).pktsPollingMode(), 0u);
    }
    // Bypass-side conservation: every descriptor taken off the NIC is
    // attributed to exactly one poll harvest.
    BypassEngine::Stats s = rig.engine_->stats();
    EXPECT_EQ(s.pktsHarvested,
              rig.nic_->rxHarvested() + rig.nic_->txConsumed());
    EXPECT_EQ(rig.nic_->rxHarvested(), 100u);
    EXPECT_EQ(rig.delivered_.size(), 100u);
}

TEST(BypassRigTest, SpinNeverSleepsMetronomeDoes)
{
    BypassRig rig;
    rig.build(BypassRig::bypassParams("spin"));
    rig.eq_.runUntil(milliseconds(1));
    BypassEngine::Stats spin = rig.engine_->stats();
    EXPECT_GT(spin.pollLoops, 0u);
    EXPECT_EQ(spin.sleeps, 0u);
    EXPECT_EQ(spin.sleepResidency, 0);
    // An idle spin loop is all empty polls.
    EXPECT_EQ(spin.emptyPolls, spin.pollLoops);
    EXPECT_DOUBLE_EQ(spin.wastedPollCycleShare, 1.0);

    BypassRig metro;
    metro.build(BypassRig::bypassParams("metronome"));
    metro.eq_.runUntil(milliseconds(1));
    BypassEngine::Stats m = metro.engine_->stats();
    EXPECT_GT(m.sleeps, 0u);
    EXPECT_GT(m.sleepResidency, 0);
    // Intermittent sleep trades poll loops for residency: far fewer
    // iterations than the spin loop managed in the same window.
    EXPECT_LT(m.pollLoops, spin.pollLoops / 10);
}

TEST(BypassRigTest, ArmedIrqCutsTheSleepShort)
{
    BypassRig rig;
    PolicyParams params = BypassRig::bypassParams("metronome");
    params.set("dataplane.sleep_armed_irq", "true");
    // A long fixed sleep makes the early wake unmistakable.
    params.set("metronome.min_sleep", "100us");
    params.set("metronome.max_sleep", "100us");
    rig.build(params);

    // Let the poller drain into its steady sleep...
    rig.eq_.runUntil(microseconds(150));
    BypassEngine::Stats before = rig.engine_->stats();
    EXPECT_GT(before.sleeps, 0u);

    // ...then land a packet mid-sleep: the armed queue interrupt wakes
    // the poller, which harvests and delivers well before the 100 us
    // sleep would have expired on its own.
    const Tick arrival = rig.eq_.now();
    rig.sendToFlow(7);
    rig.eq_.runUntil(arrival + microseconds(50));
    EXPECT_EQ(rig.delivered_.size(), 1u);
    EXPECT_EQ(rig.engine_->stats().pktsHarvested,
              rig.nic_->rxHarvested() + rig.nic_->txConsumed());
}

TEST(BypassRigTest, UnarmedSleepWaitsOutTheTimer)
{
    BypassRig rig;
    PolicyParams params = BypassRig::bypassParams("metronome");
    params.set("metronome.min_sleep", "100us");
    params.set("metronome.max_sleep", "100us");
    rig.build(params);

    rig.eq_.runUntil(microseconds(150));
    const Tick arrival = rig.eq_.now();
    rig.sendToFlow(7);
    // Without armed interrupts the packet sits in the ring until the
    // sleep timer expires; 50 us later it is still undelivered.
    rig.eq_.runUntil(arrival + microseconds(50));
    EXPECT_EQ(rig.delivered_.size(), 0u);
    // The full sleep later, it has been harvested.
    rig.eq_.runUntil(arrival + microseconds(250));
    EXPECT_EQ(rig.delivered_.size(), 1u);
}

TEST(BypassRigTest, RingShrinkMidRunKeepsAccountingExact)
{
    // Satellite: Nic::setRxRingSize x bypass harvest. Shrinking the
    // ring under a live poll loop must not strand or double-count
    // descriptors — harvests are counted at pop time and each burst is
    // capped by the live ring bound.
    BypassRig rig;
    PolicyParams params = BypassRig::bypassParams("spin");
    params.set("dataplane.poll_batch", 64);
    rig.build(params);

    for (std::uint32_t flow = 0; flow < 200; ++flow)
        rig.sendToFlow(flow);
    rig.eq_.runUntil(microseconds(50));
    rig.nic_->setRxRingSize(4); // degrade: burst cap drops to 4
    for (std::uint32_t flow = 0; flow < 200; ++flow)
        rig.sendToFlow(flow);
    rig.eq_.runUntil(milliseconds(2));

    BypassEngine::Stats s = rig.engine_->stats();
    EXPECT_EQ(s.pktsHarvested,
              rig.nic_->rxHarvested() + rig.nic_->txConsumed());
    // Everything harvested was delivered (no Tx wire in this rig), and
    // harvested + dropped covers everything received.
    EXPECT_EQ(rig.delivered_.size(), rig.nic_->rxHarvested());
    EXPECT_EQ(rig.nic_->rxHarvested() + rig.nic_->packetsDropped(),
              rig.nic_->packetsReceived());
    // The degraded ring actually bit.
    EXPECT_GT(rig.nic_->packetsDropped(), 0u);
}

TEST(BypassRigTest, DestructionMidSleepIsClean)
{
    BypassRig rig;
    rig.build(BypassRig::bypassParams("metronome"));
    rig.eq_.runUntil(microseconds(100));
    // At least one poller is now asleep with its timer scheduled; the
    // engine (and its threads) must release the pending event instead
    // of panicking in ~Event.
    EXPECT_GT(rig.engine_->stats().sleeps, 0u);
    rig.engine_.reset();
}

TEST(BypassRigTest, IdenticalRigsReplayByteIdenticalCounters)
{
    PolicyParams params = BypassRig::bypassParams("metronome");
    params.set("dataplane.sleep_armed_irq", "true");
    BypassRig rig;
    rig.build(params);
    BypassRig twin;
    twin.build(params);

    auto drive = [](BypassRig &r) {
        for (std::uint32_t flow = 0; flow < 64; ++flow)
            r.sendToFlow(flow * 3);
        r.eq_.runUntil(milliseconds(1));
    };
    drive(rig);
    drive(twin);

    BypassEngine::Stats a = rig.engine_->stats();
    BypassEngine::Stats b = twin.engine_->stats();
    EXPECT_EQ(a.pollLoops, b.pollLoops);
    EXPECT_EQ(a.emptyPolls, b.emptyPolls);
    EXPECT_EQ(a.sleeps, b.sleeps);
    EXPECT_EQ(a.sleepResidency, b.sleepResidency);
    EXPECT_EQ(a.pktsHarvested, b.pktsHarvested);
    EXPECT_EQ(rig.delivered_, twin.delivered_);
}

// ---------------------------------------------------- experiment rig

ExperimentConfig
bypassExperiment(const std::string &policy)
{
    ExperimentConfig cfg;
    cfg.app = AppProfile::memcached();
    cfg.freqPolicy = "ondemand";
    cfg.load = LoadLevel::kMed;
    cfg.numCores = 4;
    cfg.warmup = milliseconds(20);
    cfg.duration = milliseconds(100);
    cfg.params.set("dataplane.mode", "bypass");
    cfg.params.set("dataplane.policy", policy);
    return cfg;
}

TEST(BypassExperimentTest, ModeSelectionShiftsAllWorkToPolling)
{
    ExperimentResult r = Experiment(bypassExperiment("spin")).run();
    // Bypass mode: zero interrupt-mode packets, zero softirq handoffs,
    // and the conservation identity carries over with the polling
    // counter doing all the work.
    EXPECT_EQ(r.pktsIntrMode, 0u);
    EXPECT_GT(r.pktsPollMode, 0u);
    EXPECT_EQ(r.pktsPollMode, r.nicRxHarvested + r.nicTxConsumed);
    EXPECT_EQ(r.ksoftirqdWakes, 0u);
    EXPECT_GT(r.responsesReceived, 0u);
    EXPECT_GT(r.bypassPollLoops, 0u);
    EXPECT_EQ(r.bypassSleeps, 0u);
    EXPECT_GT(r.bypassWastedPollEnergy, 0.0);
}

TEST(BypassExperimentTest, MetronomeTradesLoopsForResidency)
{
    ExperimentResult spin =
        Experiment(bypassExperiment("spin")).run();
    ExperimentConfig mcfg = bypassExperiment("metronome");
    mcfg.params.set("dataplane.sleep_armed_irq", "true");
    ExperimentResult metro = Experiment(mcfg).run();

    EXPECT_GT(metro.bypassSleeps, 0u);
    EXPECT_GT(metro.bypassSleepResidency, 0);
    EXPECT_LT(metro.bypassPollLoops, spin.bypassPollLoops);
    EXPECT_LT(metro.bypassWastedPollEnergy,
              spin.bypassWastedPollEnergy);
    EXPECT_EQ(metro.pktsIntrMode, 0u);
    EXPECT_EQ(metro.pktsPollMode,
              metro.nicRxHarvested + metro.nicTxConsumed);
}

TEST(BypassExperimentTest, UnknownPolicyFailsAtConstruction)
{
    ExperimentConfig cfg = bypassExperiment("no-such-policy");
    EXPECT_THROW(Experiment{cfg}, FatalError);
}

TEST(BypassExperimentTest, PollCoresMustLeaveAWorker)
{
    ExperimentConfig cfg = bypassExperiment("spin");
    cfg.params.set("dataplane.poll_cores", 4);
    EXPECT_THROW(Experiment{cfg}, FatalError);
}

TEST(BypassExperimentTest, FaultedRingConservesUnderBypass)
{
    // ring_degrade mid-run under a live bypass poll loop: drops may
    // spike, but the mode/harvest identity must stay exact.
    ExperimentConfig cfg = bypassExperiment("metronome");
    cfg.params.setTick("fault.ring_degrade_at", milliseconds(50));
    cfg.params.set("fault.ring_size", 8);
    cfg.params.setTick("fault.ring_restore_at", milliseconds(90));
    ExperimentResult r = Experiment(cfg).run();

    EXPECT_EQ(r.pktsIntrMode, 0u);
    EXPECT_EQ(r.pktsPollMode, r.nicRxHarvested + r.nicTxConsumed);
    EXPECT_GE(r.requestsSent, r.responsesReceived + r.nicDrops);
    EXPECT_GT(r.responsesReceived, 0u);
}

TEST(BypassExperimentTest, RerunIsDeterministic)
{
    ExperimentConfig cfg = bypassExperiment("metronome");
    cfg.params.set("dataplane.sleep_armed_irq", "true");
    ExperimentResult a = Experiment(cfg).run();
    ExperimentResult b = Experiment(cfg).run();
    EXPECT_EQ(a.requestsSent, b.requestsSent);
    EXPECT_EQ(a.responsesReceived, b.responsesReceived);
    EXPECT_EQ(a.pktsPollMode, b.pktsPollMode);
    EXPECT_EQ(a.bypassPollLoops, b.bypassPollLoops);
    EXPECT_EQ(a.bypassSleeps, b.bypassSleeps);
    EXPECT_EQ(a.bypassSleepResidency, b.bypassSleepResidency);
    EXPECT_EQ(a.energyJoules, b.energyJoules);
}

} // namespace
} // namespace nmapsim
