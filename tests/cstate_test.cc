/**
 * @file
 * Unit tests for the C-state controller (Table 2 wake-up latencies and
 * the Section 5.2 cache-refill penalty).
 */

#include <gtest/gtest.h>

#include "cpu/cstate.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "stats/summary.hh"

namespace nmapsim {
namespace {

class CStateTest : public ::testing::Test
{
  protected:
    const CpuProfile &profile_ = CpuProfile::xeonGold6134();
    Rng rng_{7};
};

TEST_F(CStateTest, StartsActive)
{
    CStateController c(profile_, rng_.fork());
    EXPECT_EQ(c.state(), CState::kC0);
    EXPECT_FALSE(c.sleeping());
}

TEST_F(CStateTest, EnterAndWake)
{
    CStateController c(profile_, rng_.fork(), 0.0);
    c.enterSleep(CState::kC1, 1000);
    EXPECT_TRUE(c.sleeping());
    Tick penalty = c.wake(2000);
    EXPECT_EQ(c.state(), CState::kC0);
    EXPECT_GT(penalty, 0);
    EXPECT_LT(penalty, microseconds(3)); // C1 exit is sub-microsecond
}

TEST_F(CStateTest, DoubleSleepPanics)
{
    CStateController c(profile_, rng_.fork());
    c.enterSleep(CState::kC6, 0);
    EXPECT_THROW(c.enterSleep(CState::kC1, 10), PanicError);
}

TEST_F(CStateTest, WakeWhenAwakeIsFree)
{
    CStateController c(profile_, rng_.fork());
    EXPECT_EQ(c.wake(100), 0);
}

TEST_F(CStateTest, EnterC0IsNoOp)
{
    CStateController c(profile_, rng_.fork());
    c.enterSleep(CState::kC0, 100);
    EXPECT_FALSE(c.sleeping());
}

TEST_F(CStateTest, Cc6WakeMatchesTable2)
{
    // Table 2, Gold 6134: CC6->CC0 mean 27.43 us (no cache touch).
    CStateController c(profile_, rng_.fork(), 0.0);
    SummaryStats stats;
    Tick t = 0;
    for (int i = 0; i < 2000; ++i) {
        c.enterSleep(CState::kC6, t);
        t += milliseconds(1);
        stats.add(toMicroseconds(c.wake(t)));
        t += milliseconds(1);
    }
    EXPECT_NEAR(stats.mean(), 27.43, 0.5);
    EXPECT_NEAR(stats.stdev(), 4.05, 0.5);
}

TEST_F(CStateTest, Cc1WakeMatchesTable2)
{
    CStateController c(profile_, rng_.fork(), 0.0);
    SummaryStats stats;
    Tick t = 0;
    for (int i = 0; i < 2000; ++i) {
        c.enterSleep(CState::kC1, t);
        t += milliseconds(1);
        stats.add(toMicroseconds(c.wake(t)));
        t += milliseconds(1);
    }
    // Table 2, Gold 6134: 0.56 us mean (truncation shifts it slightly).
    EXPECT_NEAR(stats.mean(), 0.56, 0.25);
}

TEST_F(CStateTest, CacheRefillChargedOnlyAfterC6)
{
    // Full cache touch: CC6 wake pays exit + full worst-case refill.
    CStateController c(profile_, rng_.fork(), 1.0);
    c.enterSleep(CState::kC6, 0);
    Tick p6 = c.wake(milliseconds(1));
    EXPECT_GT(p6, profile_.cstates.c6CacheRefillWorst);

    c.enterSleep(CState::kC1, milliseconds(2));
    Tick p1 = c.wake(milliseconds(3));
    EXPECT_LT(p1, microseconds(3)); // no refill after C1
}

TEST_F(CStateTest, CacheTouchFractionScalesRefill)
{
    Rng r1(1);
    Rng r2(1); // same stream so exit-latency noise matches
    CStateController full(profile_, r1, 1.0);
    CStateController none(profile_, r2, 0.0);
    full.enterSleep(CState::kC6, 0);
    none.enterSleep(CState::kC6, 0);
    Tick pf = full.wake(milliseconds(1));
    Tick pn = none.wake(milliseconds(1));
    EXPECT_EQ(pf - pn, profile_.cstates.c6CacheRefillWorst);
}

TEST_F(CStateTest, InvalidCacheTouchIsFatal)
{
    EXPECT_THROW(CStateController(profile_, rng_.fork(), 1.5),
                 FatalError);
    EXPECT_THROW(CStateController(profile_, rng_.fork(), -0.1),
                 FatalError);
}

TEST_F(CStateTest, ResidencyAccounting)
{
    CStateController c(profile_, rng_.fork(), 0.0);
    c.enterSleep(CState::kC6, milliseconds(1));
    c.wake(milliseconds(3));
    c.enterSleep(CState::kC1, milliseconds(4));
    c.wake(milliseconds(5));

    EXPECT_EQ(c.residency(CState::kC6, milliseconds(5)),
              milliseconds(2));
    EXPECT_EQ(c.residency(CState::kC1, milliseconds(5)),
              milliseconds(1));
    EXPECT_EQ(c.residency(CState::kC0, milliseconds(5)),
              milliseconds(2));
}

TEST_F(CStateTest, ResidencyIncludesOngoingState)
{
    CStateController c(profile_, rng_.fork(), 0.0);
    c.enterSleep(CState::kC6, 0);
    EXPECT_EQ(c.residency(CState::kC6, milliseconds(10)),
              milliseconds(10));
}

TEST_F(CStateTest, WakeCountsAndMarks)
{
    CStateController c(profile_, rng_.fork(), 0.0);
    for (int i = 0; i < 3; ++i) {
        c.enterSleep(CState::kC6, milliseconds(2 * i));
        c.wake(milliseconds(2 * i + 1));
    }
    c.enterSleep(CState::kC1, milliseconds(100));
    c.wake(milliseconds(101));
    EXPECT_EQ(c.wakeCount(CState::kC6), 3u);
    EXPECT_EQ(c.wakeCount(CState::kC1), 1u);
    EXPECT_EQ(c.cc6Entries().count(), 3u);
}

TEST_F(CStateTest, DeepenPromotesWithoutWaking)
{
    CStateController c(profile_, rng_.fork(), 0.0);
    c.enterSleep(CState::kC1, 0);
    c.deepen(CState::kC6, milliseconds(1));
    EXPECT_EQ(c.state(), CState::kC6);
    EXPECT_EQ(c.cc6Entries().count(), 1u);
    // Residency splits at the promotion point.
    EXPECT_EQ(c.residency(CState::kC1, milliseconds(3)),
              milliseconds(1));
    EXPECT_EQ(c.residency(CState::kC6, milliseconds(3)),
              milliseconds(2));
}

TEST_F(CStateTest, DeepenToShallowerIsNoOp)
{
    CStateController c(profile_, rng_.fork(), 0.0);
    c.enterSleep(CState::kC6, 0);
    c.deepen(CState::kC1, milliseconds(1));
    EXPECT_EQ(c.state(), CState::kC6);
}

TEST_F(CStateTest, DeepenWhileAwakeIsNoOp)
{
    CStateController c(profile_, rng_.fork(), 0.0);
    c.deepen(CState::kC6, milliseconds(1));
    EXPECT_EQ(c.state(), CState::kC0);
}

} // namespace
} // namespace nmapsim
