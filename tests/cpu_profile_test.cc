/**
 * @file
 * Unit tests for the calibrated CPU profiles.
 */

#include <gtest/gtest.h>

#include "cpu/cpu_profile.hh"
#include "sim/logging.hh"

namespace nmapsim {
namespace {

TEST(CpuProfileTest, Gold6134MatchesPaperSetup)
{
    const CpuProfile &p = CpuProfile::xeonGold6134();
    // Section 6.1: 16 P-states from 1.2 GHz (P15) to 3.2 GHz (P0).
    EXPECT_EQ(p.pstates.numStates(), 16u);
    EXPECT_DOUBLE_EQ(p.pstates.state(0).freqHz, 3.2e9);
    EXPECT_DOUBLE_EQ(p.pstates.state(15).freqHz, 1.2e9);
    // Table 1: ~525-528 us re-transition latencies.
    EXPECT_NEAR(p.retrans.smallDownHigh.meanUs, 525.7, 0.01);
    EXPECT_NEAR(p.retrans.farUp.meanUs, 527.3, 0.01);
    // Table 2: ~27.43 us CC6 exit.
    EXPECT_NEAR(p.cstates.c6Exit.meanUs, 27.43, 0.01);
    // Section 5.2: 26.4 us worst-case refill for the 1 MB L2.
    EXPECT_EQ(p.cstates.c6CacheRefillWorst,
              static_cast<Tick>(26.4 * kMicrosecond));
}

TEST(CpuProfileTest, DesktopPartsHaveFastRetransitions)
{
    // Table 1: desktop re-transitions are tens of us, servers ~500 us.
    for (const CpuProfile *p :
         {&CpuProfile::i76700(), &CpuProfile::i77700()}) {
        EXPECT_LT(p->retrans.farUp.meanUs, 100.0);
        EXPECT_GT(p->retrans.farUp.meanUs, 10.0);
    }
    for (const CpuProfile *p :
         {&CpuProfile::xeonE52620v4(), &CpuProfile::xeonGold6134()}) {
        EXPECT_GT(p->retrans.farUp.meanUs, 500.0);
    }
}

TEST(CpuProfileTest, NominalTransitionIsAcpiTenMicroseconds)
{
    // Section 5.1: ACPI tables advertise 10 us.
    EXPECT_EQ(CpuProfile::xeonGold6134().nominalTransition,
              microseconds(10));
    EXPECT_EQ(CpuProfile::i76700().nominalTransition, microseconds(10));
}

TEST(CpuProfileTest, WakeupLatenciesMatchTable2)
{
    EXPECT_NEAR(CpuProfile::i76700().cstates.c6Exit.meanUs, 27.70, 0.01);
    EXPECT_NEAR(CpuProfile::i76700().cstates.c1Exit.meanUs, 0.35, 0.01);
    EXPECT_NEAR(CpuProfile::xeonE52620v4().cstates.c6Exit.meanUs, 27.25,
                0.01);
    EXPECT_NEAR(CpuProfile::xeonGold6134().cstates.c1Exit.meanUs, 0.56,
                0.01);
}

TEST(CpuProfileTest, E5HasSmallerCacheRefill)
{
    // 256 KB L2 -> 7 us vs 1 MB L2 -> 26.4 us (Section 5.2).
    EXPECT_EQ(CpuProfile::xeonE52620v4().cstates.c6CacheRefillWorst,
              microseconds(7));
    EXPECT_GT(CpuProfile::xeonGold6134().cstates.c6CacheRefillWorst,
              CpuProfile::xeonE52620v4().cstates.c6CacheRefillWorst);
}

TEST(CpuProfileTest, FastVrVariantHasNoSettleWindow)
{
    const CpuProfile &fast = CpuProfile::xeonGold6134FastVr();
    EXPECT_EQ(fast.settleWindow, 0);
    // Everything else matches the real part.
    EXPECT_EQ(fast.pstates.numStates(),
              CpuProfile::xeonGold6134().pstates.numStates());
    EXPECT_EQ(fast.nominalTransition,
              CpuProfile::xeonGold6134().nominalTransition);
    EXPECT_EQ(&CpuProfile::byName("Xeon Gold 6134 (fast VR)"), &fast);
}

TEST(CpuProfileTest, ByNameLookup)
{
    EXPECT_EQ(&CpuProfile::byName("Xeon Gold 6134"),
              &CpuProfile::xeonGold6134());
    EXPECT_EQ(&CpuProfile::byName("i7-6700"), &CpuProfile::i76700());
    EXPECT_EQ(&CpuProfile::byName("i7-7700"), &CpuProfile::i77700());
    EXPECT_EQ(&CpuProfile::byName("Xeon E5-2620v4"),
              &CpuProfile::xeonE52620v4());
    EXPECT_THROW(CpuProfile::byName("Pentium 4"), FatalError);
}

TEST(CpuProfileTest, PowerParamsSane)
{
    for (const CpuProfile *p :
         {&CpuProfile::i76700(), &CpuProfile::xeonGold6134()}) {
        EXPECT_GT(p->power.dynCoeff, 0.0);
        EXPECT_GT(p->power.staticCoeff, 0.0);
        EXPECT_GE(p->power.c6Watts, 0.0);
        EXPECT_GT(p->power.busyActivity, p->power.idleActivity);
        EXPECT_GE(p->power.uncoreWatts, 0.0);
        EXPECT_GE(p->power.uncoreVoltCoeff, 0.0);
    }
}

} // namespace
} // namespace nmapsim
