/**
 * @file
 * Unit tests for the cluster dispatch registry and its built-in
 * policies (cluster/dispatch.hh, cluster/dispatch_policies.cc).
 *
 * Policies are exercised standalone — a DispatchContext with stubbed
 * outstanding-request feedback stands in for the switch — so each
 * steering property (affinity, weighted shares, argmin, packing,
 * remap stability) is checked without running a simulation.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cluster/dispatch.hh"
#include "sim/logging.hh"

namespace nmapsim {
namespace {

Packet
flowPacket(std::uint32_t flow)
{
    Packet p;
    p.flowHash = flow;
    p.sizeBytes = 64;
    return p;
}

DispatchContext
context(int hosts, std::vector<double> weights = {})
{
    DispatchContext ctx;
    ctx.numHosts = hosts;
    ctx.weights = std::move(weights);
    ctx.outstanding = [](int) { return std::uint64_t{0}; };
    return ctx;
}

class DispatchTest : public ::testing::Test
{
  protected:
    void SetUp() override { ensureBuiltinDispatchPolicies(); }
};

TEST_F(DispatchTest, RegistryHasAllBuiltins)
{
    const DispatchRegistry &reg = DispatchRegistry::instance();
    for (const char *name :
         {"flow-hash", "consistent-hash", "round-robin",
          "least-outstanding", "power-pack"})
        EXPECT_TRUE(reg.has(name)) << name;
    EXPECT_GE(reg.names().size(), 5u);
    EXPECT_FALSE(reg.help("power-pack").empty());
}

TEST_F(DispatchTest, ResolvesCaseInsensitively)
{
    const DispatchRegistry &reg = DispatchRegistry::instance();
    EXPECT_TRUE(reg.has("Flow-Hash"));
    EXPECT_TRUE(reg.has("ROUND-ROBIN"));
    EXPECT_FALSE(reg.has("no-such-policy"));
}

TEST_F(DispatchTest, UnknownNameFatals)
{
    DispatchContext ctx = context(2);
    EXPECT_THROW(DispatchRegistry::instance().make("no-such", ctx),
                 FatalError);
}

TEST_F(DispatchTest, RejectsBadWeights)
{
    DispatchContext zero = context(2, {1.0, 0.0});
    EXPECT_THROW(
        DispatchRegistry::instance().make("flow-hash", zero),
        FatalError);
    DispatchContext mismatch = context(3, {1.0, 1.0});
    EXPECT_THROW(
        DispatchRegistry::instance().make("round-robin", mismatch),
        FatalError);
}

TEST_F(DispatchTest, FlowHashIsDeterministicAffinity)
{
    DispatchContext ctx = context(4);
    auto a = DispatchRegistry::instance().make("flow-hash", ctx);
    auto b = DispatchRegistry::instance().make("flow-hash", ctx);
    for (std::uint32_t flow = 0; flow < 256; ++flow) {
        int host = a->pickHost(flowPacket(flow));
        ASSERT_GE(host, 0);
        ASSERT_LT(host, 4);
        // Same flow, same host — on repeat picks and on a fresh
        // instance (no hidden state).
        EXPECT_EQ(a->pickHost(flowPacket(flow)), host);
        EXPECT_EQ(b->pickHost(flowPacket(flow)), host);
    }
}

TEST_F(DispatchTest, FlowHashHonoursWeights)
{
    DispatchContext ctx = context(2, {3.0, 1.0});
    auto policy = DispatchRegistry::instance().make("flow-hash", ctx);
    int host0 = 0;
    const int flows = 20000;
    for (std::uint32_t flow = 0; flow < flows; ++flow)
        if (policy->pickHost(flowPacket(flow)) == 0)
            ++host0;
    double share = static_cast<double>(host0) / flows;
    EXPECT_NEAR(share, 0.75, 0.02);
}

TEST_F(DispatchTest, RoundRobinSpreadsWeightedEvenly)
{
    DispatchContext ctx = context(2, {2.0, 1.0});
    auto policy =
        DispatchRegistry::instance().make("round-robin", ctx);
    std::array<int, 2> served = {0, 0};
    for (int i = 0; i < 300; ++i)
        ++served[static_cast<std::size_t>(
            policy->pickHost(flowPacket(0)))];
    EXPECT_EQ(served[0], 200);
    EXPECT_EQ(served[1], 100);
}

TEST_F(DispatchTest, RoundRobinNeverStarvesUnweighted)
{
    DispatchContext ctx = context(3);
    auto policy =
        DispatchRegistry::instance().make("round-robin", ctx);
    std::array<int, 3> served = {0, 0, 0};
    for (int i = 0; i < 9; ++i)
        ++served[static_cast<std::size_t>(
            policy->pickHost(flowPacket(0)))];
    EXPECT_EQ(served[0], 3);
    EXPECT_EQ(served[1], 3);
    EXPECT_EQ(served[2], 3);
}

TEST_F(DispatchTest, LeastOutstandingPicksWeightedArgmin)
{
    std::array<std::uint64_t, 3> outstanding = {4, 1, 9};
    DispatchContext ctx = context(3);
    ctx.outstanding = [&outstanding](int host) {
        return outstanding[static_cast<std::size_t>(host)];
    };
    auto policy =
        DispatchRegistry::instance().make("least-outstanding", ctx);
    EXPECT_EQ(policy->pickHost(flowPacket(0)), 1);
    outstanding = {0, 5, 5};
    EXPECT_EQ(policy->pickHost(flowPacket(0)), 0);
    // Weight normalisation: host 2 with weight 4 and 8 in flight is
    // "lighter" (2 per unit) than host 0 with weight 1 and 3 in
    // flight.
    DispatchContext wctx = context(3, {1.0, 1.0, 4.0});
    wctx.outstanding = [&outstanding](int host) {
        return outstanding[static_cast<std::size_t>(host)];
    };
    auto weighted =
        DispatchRegistry::instance().make("least-outstanding", wctx);
    outstanding = {3, 4, 8};
    EXPECT_EQ(weighted->pickHost(flowPacket(0)), 2);
}

TEST_F(DispatchTest, LeastOutstandingRequiresFeedback)
{
    DispatchContext ctx = context(2);
    ctx.outstanding = nullptr;
    EXPECT_THROW(
        DispatchRegistry::instance().make("least-outstanding", ctx),
        FatalError);
    EXPECT_THROW(
        DispatchRegistry::instance().make("power-pack", ctx),
        FatalError);
}

TEST_F(DispatchTest, PowerPackFillsInIdOrderUpToTheKnee)
{
    std::array<std::uint64_t, 3> outstanding = {0, 0, 0};
    DispatchContext ctx = context(3);
    ctx.params.set("dispatch.pack_limit", 4.0);
    ctx.outstanding = [&outstanding](int host) {
        return outstanding[static_cast<std::size_t>(host)];
    };
    auto policy =
        DispatchRegistry::instance().make("power-pack", ctx);
    // Below the knee everything lands on host 0.
    EXPECT_EQ(policy->pickHost(flowPacket(0)), 0);
    outstanding = {3, 0, 0};
    EXPECT_EQ(policy->pickHost(flowPacket(0)), 0);
    // Host 0 at the knee spills to host 1; host 1 full spills to 2.
    outstanding = {4, 0, 0};
    EXPECT_EQ(policy->pickHost(flowPacket(0)), 1);
    outstanding = {4, 4, 1};
    EXPECT_EQ(policy->pickHost(flowPacket(0)), 2);
    // Everyone at/over the knee: degrade to least-outstanding.
    outstanding = {6, 4, 5};
    EXPECT_EQ(policy->pickHost(flowPacket(0)), 1);
}

TEST_F(DispatchTest, PowerPackRejectsNonPositiveKnee)
{
    DispatchContext ctx = context(2);
    ctx.params.set("dispatch.pack_limit", 0.0);
    EXPECT_THROW(
        DispatchRegistry::instance().make("power-pack", ctx),
        FatalError);
}

TEST_F(DispatchTest, ConsistentHashCoversAllHosts)
{
    DispatchContext ctx = context(4);
    auto policy =
        DispatchRegistry::instance().make("consistent-hash", ctx);
    std::map<int, int> served;
    const int flows = 4000;
    for (std::uint32_t flow = 0; flow < flows; ++flow) {
        int host = policy->pickHost(flowPacket(flow));
        ASSERT_GE(host, 0);
        ASSERT_LT(host, 4);
        ++served[host];
    }
    // Vnode smoothing: every host owns a non-trivial share.
    for (int host = 0; host < 4; ++host)
        EXPECT_GT(served[host], flows / 20) << "host " << host;
}

TEST_F(DispatchTest, ConsistentHashIsStableUnderHostRemoval)
{
    // The (N-1)-host ring is exactly the N-host ring minus the removed
    // host's vnodes, so flows not on the removed host must not move.
    auto four = DispatchRegistry::instance().make("consistent-hash",
                                                  context(4));
    auto three = DispatchRegistry::instance().make("consistent-hash",
                                                   context(3));
    int moved = 0;
    int stayed_pool = 0;
    for (std::uint32_t flow = 0; flow < 2000; ++flow) {
        int before = four->pickHost(flowPacket(flow));
        if (before == 3)
            continue; // redistributed by design
        ++stayed_pool;
        if (three->pickHost(flowPacket(flow)) != before)
            ++moved;
    }
    EXPECT_GT(stayed_pool, 0);
    EXPECT_EQ(moved, 0);
}

TEST_F(DispatchTest, ConsistentHashRejectsBadVnodes)
{
    DispatchContext ctx = context(2);
    ctx.params.set("dispatch.vnodes", 0);
    EXPECT_THROW(
        DispatchRegistry::instance().make("consistent-hash", ctx),
        FatalError);
}

} // namespace
} // namespace nmapsim
