/**
 * @file
 * The pinned configurations and render helpers behind the golden-output
 * regression tests (determinism_test.cc) and the golden generator
 * (golden_gen.cc).
 *
 * These configs are frozen: their serialised ResultWriter output is
 * checked in under tests/golden/ and every engine rewrite must
 * reproduce it byte for byte. Changing a config here (or the record
 * format) invalidates the goldens — regenerate them with golden_gen
 * *before* the engine change lands, and review the diff like any other
 * contract change.
 */

#ifndef NMAPSIM_TESTS_GOLDEN_CONFIGS_HH_
#define NMAPSIM_TESTS_GOLDEN_CONFIGS_HH_

#include <sstream>
#include <string>

#include "harness/cluster.hh"
#include "harness/cluster_io.hh"
#include "harness/experiment.hh"
#include "harness/result_io.hh"
#include "stats/result_writer.hh"

namespace nmapsim {
namespace golden {

/** Small but policy-rich: NMAP exercises the monitor/decision path,
 *  menu exercises idle prediction. Thresholds are pinned so the run
 *  does not profile (keeps the test fast). */
inline ExperimentConfig
smallSingleHost()
{
    ExperimentConfig cfg;
    cfg.app = AppProfile::memcached();
    cfg.load = LoadLevel::kMed;
    cfg.freqPolicy = "NMAP";
    cfg.idlePolicy = "menu";
    cfg.params.set("nmap.ni_th", "400");
    cfg.params.set("nmap.cu_th", "0.7");
    cfg.numCores = 4;
    cfg.warmup = milliseconds(10);
    cfg.duration = milliseconds(40);
    cfg.seed = 1234;
    return cfg;
}

inline ClusterConfig
smallCluster()
{
    ClusterConfig cfg;
    cfg.base = smallSingleHost();
    cfg.base.freqPolicy = "ondemand";
    cfg.numHosts = 2;
    cfg.dispatch = "flow-hash";
    cfg.drain = milliseconds(5);
    return cfg;
}

/** Seeded loss + corruption + client retries on one host. */
inline ExperimentConfig
faultedSingleHost()
{
    ExperimentConfig cfg = smallSingleHost();
    cfg.params.set("fault.wire_loss", "0.02");
    cfg.params.set("fault.wire_corrupt", "0.01");
    cfg.params.setTick("client.timeout", milliseconds(2));
    cfg.params.set("client.retries", 3);
    return cfg;
}

/** The hardest path: whole-host crash + recovery, failure-detector
 *  ejection/readmission and retries. */
inline ClusterConfig
faultedCluster()
{
    ClusterConfig cfg = smallCluster();
    cfg.dispatch = "least-outstanding";
    cfg.fabric.healthInterval = milliseconds(1);
    cfg.fabric.healthTimeout = milliseconds(3);
    cfg.fabric.ejectDuration = milliseconds(5);
    cfg.base.params.set("fault.wire_loss", "0.01");
    cfg.base.params.set("fault.crash_host", 1);
    cfg.base.params.setTick("fault.crash_at", milliseconds(15));
    cfg.base.params.setTick("fault.recover_at", milliseconds(30));
    cfg.base.params.setTick("client.timeout", milliseconds(2));
    cfg.base.params.set("client.retries", 2);
    return cfg;
}

/** Kernel-bypass dataplane under fire: Metronome intermittent sleep
 *  with armed wakeups, plus a mid-run rx-ring degrade/restore cycle.
 *  Pins the poll-loop/sleep/harvest machinery and the bypass result
 *  columns byte for byte. */
inline ExperimentConfig
faultedBypassHost()
{
    ExperimentConfig cfg = smallSingleHost();
    cfg.freqPolicy = "ondemand";
    cfg.params.erase("nmap.ni_th");
    cfg.params.erase("nmap.cu_th");
    cfg.params.set("dataplane.mode", "bypass");
    cfg.params.set("dataplane.policy", "metronome");
    cfg.params.set("dataplane.sleep_armed_irq", "true");
    cfg.params.setTick("fault.ring_degrade_at", milliseconds(20));
    cfg.params.set("fault.ring_size", 8);
    cfg.params.setTick("fault.ring_restore_at", milliseconds(35));
    return cfg;
}

/** 3-tier LB -> app -> cache chain: a thin load-balancer tier fans
 *  into two app hosts, which forward to one cache host. Exercises
 *  east-west forwarding, per-tier dispatch and hop attribution. */
inline ClusterConfig
tieredCluster()
{
    ClusterConfig cfg = smallCluster();
    cfg.dispatch = "round-robin";
    cfg.numHosts = 4; // derived from the topology; pinned for records
    cfg.base.params.set("topology.tiers", 3);
    cfg.base.params.set("topology.tier0.name", "lb");
    cfg.base.params.set("topology.tier0.hosts", 1);
    cfg.base.params.set("topology.tier0.service_scale", "0.25");
    cfg.base.params.set("topology.tier1.name", "app");
    cfg.base.params.set("topology.tier1.hosts", 2);
    cfg.base.params.set("topology.tier1.dispatch",
                        "least-outstanding");
    cfg.base.params.set("topology.tier2.name", "cache");
    cfg.base.params.set("topology.tier2.hosts", 1);
    cfg.base.params.set("topology.tier2.service_scale", "0.5");
    return cfg;
}

/** 4-stage NFV-style service-function chain, one host per stage,
 *  with per-stage service weights (classification is cheap, DPI is
 *  the bottleneck). */
inline ClusterConfig
nfvChain()
{
    ClusterConfig cfg = smallCluster();
    cfg.dispatch = "flow-hash";
    cfg.numHosts = 4; // derived from the topology; pinned for records
    cfg.base.params.set("topology.tiers", 4);
    cfg.base.params.set("topology.tier0.name", "classify");
    cfg.base.params.set("topology.tier0.service_scale", "0.25");
    cfg.base.params.set("topology.tier1.name", "firewall");
    cfg.base.params.set("topology.tier1.service_scale", "0.5");
    cfg.base.params.set("topology.tier2.name", "dpi");
    cfg.base.params.set("topology.tier3.name", "nat");
    cfg.base.params.set("topology.tier3.service_scale", "0.5");
    return cfg;
}

/** Cascading failure with the full resilience stack armed: a 3-tier
 *  chain with a mid-chain client pool, a crashed-and-recovered middle
 *  host, queue-deadline admission at every app queue, breakers in the
 *  switch, a client retry budget and chain-wide deadline propagation.
 *  Pins the shed/budget/breaker counters and the resilience record
 *  columns byte for byte. */
inline ClusterConfig
resilientCascade()
{
    ClusterConfig cfg = smallCluster();
    cfg.dispatch = "round-robin";
    cfg.numHosts = 4; // derived from the topology; pinned for records
    cfg.fabric.healthInterval = milliseconds(1);
    cfg.fabric.healthTimeout = milliseconds(3);
    cfg.fabric.ejectDuration = milliseconds(5);
    cfg.base.params.set("topology.tiers", 3);
    cfg.base.params.set("topology.tier1.hosts", 2);
    cfg.base.params.set("topology.tier1.clients", 1);
    cfg.base.params.set("fault.crash_host", 1);
    cfg.base.params.setTick("fault.crash_at", milliseconds(15));
    cfg.base.params.setTick("fault.recover_at", milliseconds(30));
    cfg.base.params.setTick("client.timeout", milliseconds(2));
    cfg.base.params.set("client.retries", 3);
    cfg.base.params.set("resilience.admission", "queue-deadline");
    cfg.base.params.setTick("resilience.admit_target",
                            microseconds(200));
    cfg.base.params.setTick("resilience.admit_interval",
                            milliseconds(1));
    cfg.base.params.set("resilience.retry_budget", "0.2");
    cfg.base.params.setTick("resilience.breaker_window",
                            milliseconds(5));
    cfg.base.params.setTick("resilience.deadline", milliseconds(4));
    return cfg;
}

/** Serialised (JSON + CSV) ResultWriter output for one fresh run. */
inline std::string
renderSingleHost(const ExperimentConfig &cfg)
{
    const ExperimentResult result = Experiment(cfg).run();
    ResultWriter writer;
    appendResultRecord(writer, cfg, result);
    std::ostringstream out;
    writer.writeJson(out);
    out << '\n';
    writer.writeCsv(out);
    return out.str();
}

inline std::string
renderCluster(const ClusterConfig &cfg)
{
    const ClusterResult result = ClusterExperiment(cfg).run();
    ResultWriter writer;
    appendClusterResultRecord(writer, cfg, result);
    std::ostringstream out;
    writer.writeJson(out);
    out << '\n';
    writer.writeCsv(out);
    return out.str();
}

} // namespace golden
} // namespace nmapsim

#endif // NMAPSIM_TESTS_GOLDEN_CONFIGS_HH_
