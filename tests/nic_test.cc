/**
 * @file
 * Unit tests for the multi-queue NIC: RSS steering, interrupt
 * moderation (ITR), IRQ masking, Tx completions and drops.
 */

#include <gtest/gtest.h>

#include <vector>

#include "net/nic.hh"
#include "net/wire.hh"
#include "sim/event_queue.hh"

namespace nmapsim {
namespace {

Packet
requestPacket(std::uint32_t flow, std::uint64_t id = 1)
{
    Packet p;
    p.requestId = id;
    p.kind = Packet::Kind::kRequest;
    p.flowHash = flow;
    p.sizeBytes = 128;
    return p;
}

class NicTest : public ::testing::Test
{
  protected:
    NicTest()
    {
        config_.numQueues = 4;
        config_.itr = microseconds(10);
        nic_ = std::make_unique<Nic>(eq_, config_);
        nic_->setIrqHandler([this](int q) {
            irqs_.push_back({eq_.now(), q});
            nic_->disableIrq(q); // as the driver's handler would
        });
    }

    EventQueue eq_;
    NicConfig config_;
    std::unique_ptr<Nic> nic_;
    std::vector<std::pair<Tick, int>> irqs_;
};

TEST_F(NicTest, RssSteersByFlowHash)
{
    EXPECT_EQ(nic_->rssQueue(0), 0);
    EXPECT_EQ(nic_->rssQueue(5), 1);
    EXPECT_EQ(nic_->rssQueue(7), 3);
    nic_->receive(requestPacket(6));
    EXPECT_EQ(nic_->rxDepth(2), 1u);
    EXPECT_EQ(nic_->rxDepth(0), 0u);
}

TEST_F(NicTest, FirstPacketRaisesImmediateIrq)
{
    nic_->receive(requestPacket(0));
    ASSERT_EQ(irqs_.size(), 1u);
    EXPECT_EQ(irqs_[0].second, 0);
    EXPECT_EQ(irqs_[0].first, 0);
}

TEST_F(NicTest, ItrModeratesInterruptRate)
{
    // Handler re-enables immediately so ITR is the only limiter.
    nic_->setIrqHandler([this](int q) {
        irqs_.push_back({eq_.now(), q});
        Packet p;
        while (nic_->popRx(q, p)) {
        }
    });
    // Deliver a packet every 2 us for 50 us; with a 10 us ITR at most
    // ~6 interrupts may fire.
    std::vector<std::unique_ptr<EventFunctionWrapper>> events;
    for (int i = 0; i < 25; ++i) {
        events.push_back(std::make_unique<EventFunctionWrapper>(
            [this] { nic_->receive(requestPacket(0)); }, "rx"));
        eq_.schedule(events.back().get(), i * microseconds(2));
    }
    eq_.runAll();
    EXPECT_LE(irqs_.size(), 7u);
    EXPECT_GE(irqs_.size(), 4u);
    for (std::size_t i = 1; i < irqs_.size(); ++i)
        EXPECT_GE(irqs_[i].first - irqs_[i - 1].first,
                  config_.itr);
}

TEST_F(NicTest, MaskedQueueRaisesNoIrq)
{
    nic_->disableIrq(0);
    nic_->receive(requestPacket(0));
    nic_->receive(requestPacket(0));
    eq_.runAll();
    EXPECT_TRUE(irqs_.empty());
    EXPECT_EQ(nic_->rxDepth(0), 2u);
}

TEST_F(NicTest, EnableIrqFiresForPendingWork)
{
    nic_->disableIrq(0);
    nic_->receive(requestPacket(0));
    eq_.runAll();
    EXPECT_TRUE(irqs_.empty());
    nic_->enableIrq(0);
    eq_.runAll();
    ASSERT_EQ(irqs_.size(), 1u);
}

TEST_F(NicTest, EnableIrqWithNoWorkStaysQuiet)
{
    nic_->disableIrq(1);
    nic_->enableIrq(1);
    eq_.runAll();
    EXPECT_TRUE(irqs_.empty());
}

TEST_F(NicTest, PopRxIsFifo)
{
    nic_->disableIrq(0);
    for (std::uint64_t i = 0; i < 5; ++i)
        nic_->receive(requestPacket(0, i));
    Packet p;
    for (std::uint64_t i = 0; i < 5; ++i) {
        ASSERT_TRUE(nic_->popRx(0, p));
        EXPECT_EQ(p.requestId, i);
    }
    EXPECT_FALSE(nic_->popRx(0, p));
}

TEST_F(NicTest, RingOverflowDrops)
{
    NicConfig small;
    small.numQueues = 1;
    small.rxRingSize = 4;
    Nic nic(eq_, small);
    nic.setIrqHandler([&nic](int q) { nic.disableIrq(q); });
    for (int i = 0; i < 10; ++i)
        nic.receive(requestPacket(0));
    EXPECT_EQ(nic.rxDepth(0), 4u);
    EXPECT_EQ(nic.packetsDropped(), 6u);
    EXPECT_EQ(nic.packetsReceived(), 10u);
}

TEST_F(NicTest, TransmitDeliversToWireAndPostsCompletion)
{
    Wire tx(eq_, 10e9, microseconds(5));
    std::vector<std::uint64_t> delivered;
    tx.setSink(
        [&](const Packet &p) { delivered.push_back(p.requestId); });
    nic_->setTxWire(&tx);
    nic_->disableIrq(2);

    Packet resp;
    resp.requestId = 77;
    resp.kind = Packet::Kind::kResponse;
    resp.sizeBytes = 256;
    nic_->transmit(2, resp);
    EXPECT_EQ(nic_->txPending(2), 0u); // DMA still in flight
    eq_.runAll();
    EXPECT_EQ(nic_->txPending(2), 1u);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0], 77u);
    EXPECT_EQ(nic_->packetsTransmitted(), 1u);
}

TEST_F(NicTest, TxCompletionRaisesIrq)
{
    Wire tx(eq_, 10e9, 0);
    tx.setSink([](const Packet &) {});
    nic_->setTxWire(&tx);

    Packet resp;
    resp.kind = Packet::Kind::kResponse;
    resp.sizeBytes = 64;
    nic_->transmit(1, resp);
    eq_.runAll();
    ASSERT_EQ(irqs_.size(), 1u);
    EXPECT_EQ(irqs_[0].second, 1);
}

TEST_F(NicTest, ConsumeTxBounded)
{
    Wire tx(eq_, 10e9, 0);
    tx.setSink([](const Packet &) {});
    nic_->setTxWire(&tx);
    nic_->disableIrq(0);
    Packet resp;
    resp.kind = Packet::Kind::kResponse;
    resp.sizeBytes = 64;
    for (int i = 0; i < 5; ++i)
        nic_->transmit(0, resp);
    eq_.runAll();
    EXPECT_EQ(nic_->txPending(0), 5u);
    EXPECT_EQ(nic_->consumeTx(0, 3), 3u);
    EXPECT_EQ(nic_->txPending(0), 2u);
    EXPECT_EQ(nic_->consumeTx(0, 10), 2u);
    EXPECT_EQ(nic_->txPending(0), 0u);
}

TEST_F(NicTest, PacketObserverSeesAllArrivals)
{
    int seen = 0;
    nic_->addPacketObserver([&](const Packet &) { ++seen; });
    for (int i = 0; i < 3; ++i)
        nic_->receive(requestPacket(static_cast<std::uint32_t>(i)));
    EXPECT_EQ(seen, 3);
}

} // namespace
} // namespace nmapsim
