/**
 * @file
 * Unit tests for the TraceCollector (the Fig. 2/7/9 data source).
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "harness/trace_collector.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace nmapsim {
namespace {

class TraceCollectorTest : public ::testing::Test
{
  protected:
    EventQueue eq_;
    Rng rng_{66};

    void
    advanceTo(Tick t)
    {
        EventFunctionWrapper done([] {}, "done");
        eq_.schedule(&done, t);
        eq_.runAll();
    }
};

TEST_F(TraceCollectorTest, AggregatesPacketsAcrossCores)
{
    TraceCollector tc(eq_, 0);
    tc.onPollProcessed(0, 10, 5);
    tc.onPollProcessed(3, 7, 2); // different core, same bucket
    EXPECT_DOUBLE_EQ(tc.intrSeries().at(0), 17.0);
    EXPECT_DOUBLE_EQ(tc.pollSeries().at(0), 7.0);
}

TEST_F(TraceCollectorTest, BucketsByTime)
{
    TraceCollector tc(eq_, 0, milliseconds(1));
    tc.onPollProcessed(0, 4, 0);
    advanceTo(milliseconds(2.5));
    tc.onPollProcessed(0, 6, 0);
    EXPECT_DOUBLE_EQ(tc.intrSeries().bucket(0), 4.0);
    EXPECT_DOUBLE_EQ(tc.intrSeries().bucket(1), 0.0);
    EXPECT_DOUBLE_EQ(tc.intrSeries().bucket(2), 6.0);
}

TEST_F(TraceCollectorTest, KsoftirqdMarksOnlyWatchedCore)
{
    TraceCollector tc(eq_, 2);
    tc.onKsoftirqdWake(0);
    tc.onKsoftirqdWake(2);
    tc.onKsoftirqdWake(2);
    EXPECT_EQ(tc.ksoftirqdWakes().count(), 2u);
}

TEST_F(TraceCollectorTest, PStateTraceFollowsFrequency)
{
    Core core(0, eq_, CpuProfile::xeonGold6134(), rng_);
    TraceCollector tc(eq_, 0, milliseconds(1));
    tc.attachPStateTrace(core);
    EXPECT_DOUBLE_EQ(tc.pstateSeries().at(0), 0.0); // boots at P0

    advanceTo(milliseconds(1));
    core.dvfs().requestPState(15);
    eq_.runAll();
    advanceTo(milliseconds(3));
    // Level series: P15 from the bucket of the change onwards.
    EXPECT_DOUBLE_EQ(tc.pstateSeries().at(milliseconds(2.5)), 15.0);
    EXPECT_DOUBLE_EQ(tc.pstateSeries().at(0), 0.0);
}

TEST_F(TraceCollectorTest, ZeroCountPollsLeaveNoBucketEntry)
{
    TraceCollector tc(eq_, 0);
    tc.onPollProcessed(0, 0, 0); // an empty poll call
    EXPECT_DOUBLE_EQ(tc.intrSeries().total(), 0.0);
    EXPECT_DOUBLE_EQ(tc.pollSeries().total(), 0.0);
}

} // namespace
} // namespace nmapsim
