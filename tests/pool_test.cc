/**
 * @file
 * Lifecycle tests for the allocation-free containers in sim/pool.hh:
 * SlabPool (acquire/release/reuse, reset-on-reuse, double-free and
 * foreign-pointer fail-stops, pointer stability across slab growth)
 * and Ring (FIFO order through wraparound and growth, steady-state
 * zero allocation via the capacity high-water mark). The randomized
 * stress sections double as the ASan workout CI runs them under.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <set>
#include <vector>

#include "sim/logging.hh"
#include "sim/pool.hh"
#include "sim/rng.hh"

namespace nmapsim {
namespace {

struct Payload
{
    std::uint64_t id = 0;
    double value = 0.0;
    bool flag = false;
};

TEST(SlabPoolTest, AcquireReturnsValueInitialisedObjects)
{
    SlabPool<Payload> pool(4);
    Payload *p = pool.acquire();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->id, 0u);
    EXPECT_EQ(p->value, 0.0);
    EXPECT_FALSE(p->flag);
    EXPECT_EQ(pool.liveObjects(), 1u);
    pool.release(p);
    EXPECT_EQ(pool.liveObjects(), 0u);
}

TEST(SlabPoolTest, ReleaseThenAcquireReusesStorageAndResets)
{
    SlabPool<Payload> pool(4);
    Payload *p = pool.acquire();
    p->id = 42;
    p->value = 3.5;
    p->flag = true;
    pool.release(p);

    // With one slab and one released object, the freelist must serve
    // the same storage back — value-reset, not carrying the occupant.
    Payload *q = pool.acquire();
    EXPECT_EQ(q, p);
    EXPECT_EQ(q->id, 0u);
    EXPECT_EQ(q->value, 0.0);
    EXPECT_FALSE(q->flag);
    EXPECT_EQ(pool.reuseCount(), 1u);
    pool.release(q);
}

TEST(SlabPoolTest, GrowsBySlabsAndKeepsPointersStable)
{
    SlabPool<Payload> pool(8);
    std::vector<Payload *> live;
    for (int i = 0; i < 50; ++i) {
        Payload *p = pool.acquire();
        p->id = static_cast<std::uint64_t>(i);
        live.push_back(p);
    }
    EXPECT_EQ(pool.liveObjects(), 50u);
    EXPECT_EQ(pool.slabCount(), 7u); // ceil(50/8)
    EXPECT_EQ(pool.capacity(), 56u);

    // Slab growth must not move previously issued objects.
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(live[i]->id, static_cast<std::uint64_t>(i));

    for (Payload *p : live)
        pool.release(p);
    EXPECT_EQ(pool.liveObjects(), 0u);

    // Steady state: churning within capacity never adds a slab.
    for (int round = 0; round < 200; ++round) {
        Payload *p = pool.acquire();
        pool.release(p);
    }
    EXPECT_EQ(pool.slabCount(), 7u);
    EXPECT_GE(pool.reuseCount(), 200u);
}

TEST(SlabPoolTest, DoubleReleasePanics)
{
    SlabPool<Payload> pool(4);
    Payload *p = pool.acquire();
    pool.release(p);
    EXPECT_THROW(pool.release(p), PanicError);
}

TEST(SlabPoolTest, ForeignPointerReleasePanics)
{
    SlabPool<Payload> pool(4);
    Payload stack_obj;
    EXPECT_THROW(pool.release(&stack_obj), PanicError);

    // A pointer from a *different* pool is just as foreign.
    SlabPool<Payload> other(4);
    Payload *p = other.acquire();
    EXPECT_THROW(pool.release(p), PanicError);
    other.release(p);
}

TEST(SlabPoolTest, RandomChurnConservesAccounting)
{
    SlabPool<Payload> pool(16);
    Rng rng(7);
    std::vector<Payload *> live;
    std::uint64_t next_id = 1;

    for (int op = 0; op < 20000; ++op) {
        if (live.empty() || rng.bernoulli(0.55)) {
            Payload *p = pool.acquire();
            // Reset-on-reuse means a fresh object every time, however
            // scrambled the previous occupant left it.
            ASSERT_EQ(p->id, 0u);
            p->id = next_id++;
            live.push_back(p);
        } else {
            const std::size_t i = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(
                                      live.size() - 1)));
            live[i]->id = 0; // scramble before release
            pool.release(live[i]);
            live[i] = live.back();
            live.pop_back();
        }
        ASSERT_EQ(pool.liveObjects(), live.size());
        ASSERT_GE(pool.capacity(), pool.liveObjects());
    }

    // No aliasing: every live pointer is distinct storage.
    std::set<Payload *> distinct(live.begin(), live.end());
    EXPECT_EQ(distinct.size(), live.size());
    for (Payload *p : live)
        pool.release(p);
    EXPECT_EQ(pool.liveObjects(), 0u);
}

TEST(RingTest, FifoOrderThroughWraparound)
{
    Ring<int> ring(4);
    const std::size_t cap = ring.capacity();
    // Stay below capacity while sliding the window far past it: the
    // indices wrap, the order must not.
    int next_in = 0;
    int next_out = 0;
    for (int round = 0; round < 100; ++round) {
        while (ring.size() < cap - 1)
            ring.push_back(next_in++);
        while (ring.size() > 1) {
            ASSERT_EQ(ring.front(), next_out++);
            ring.pop_front();
        }
    }
    EXPECT_EQ(ring.capacity(), cap); // never grew
}

TEST(RingTest, GrowthPreservesOrderAndContents)
{
    Ring<int> ring(2);
    // Misalign head first so growth has to unwrap a split window.
    ring.push_back(-1);
    ring.push_back(-2);
    ring.pop_front();
    ring.pop_front();

    for (int i = 0; i < 1000; ++i)
        ring.push_back(i);
    EXPECT_EQ(ring.size(), 1000u);
    EXPECT_GE(ring.capacity(), 1024u);
    for (std::size_t i = 0; i < ring.size(); ++i)
        ASSERT_EQ(ring.at(i), static_cast<int>(i));
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(ring.front(), i);
        ring.pop_front();
    }
    EXPECT_TRUE(ring.empty());
}

TEST(RingTest, CapacityIsPowerOfTwo)
{
    for (std::size_t req : {0u, 1u, 2u, 3u, 5u, 16u, 17u, 100u}) {
        Ring<int> ring(req);
        const std::size_t cap = ring.capacity();
        EXPECT_EQ(cap & (cap - 1), 0u) << "requested " << req;
        EXPECT_GE(cap, req);
    }
}

TEST(RingTest, ClearResetsWithoutShrinking)
{
    Ring<int> ring(4);
    for (int i = 0; i < 100; ++i)
        ring.push_back(i);
    const std::size_t cap = ring.capacity();
    ring.clear();
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.capacity(), cap);
    ring.push_back(7);
    EXPECT_EQ(ring.front(), 7);
}

/** Differential stress: Ring must behave exactly like std::deque. */
TEST(RingTest, MatchesDequeUnderRandomOps)
{
    Ring<std::uint64_t> ring;
    std::deque<std::uint64_t> ref;
    Rng rng(11);
    std::uint64_t next = 0;

    for (int op = 0; op < 50000; ++op) {
        if (ref.empty() || rng.bernoulli(0.52)) {
            ring.push_back(next);
            ref.push_back(next);
            ++next;
        } else {
            ASSERT_EQ(ring.front(), ref.front());
            ring.pop_front();
            ref.pop_front();
        }
        ASSERT_EQ(ring.size(), ref.size());
        ASSERT_EQ(ring.empty(), ref.empty());
        if (!ref.empty() && op % 97 == 0) {
            for (std::size_t i = 0; i < ref.size(); ++i)
                ASSERT_EQ(ring.at(i), ref[i]);
        }
    }
}

} // namespace
} // namespace nmapsim
