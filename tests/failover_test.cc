/**
 * @file
 * Tests for the cluster switch's health-aware failover: the silence
 * detector ejects only truly unresponsive hosts, ejected hosts stop
 * receiving requests, recovery leads to readmission, and write-off /
 * late-response accounting stays consistent.
 *
 * The switch is driven directly with fake hosts (wire sinks calling
 * back into fromHost), so every test controls exactly which host is
 * silent and when.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/switch.hh"
#include "net/packet.hh"
#include "net/wire.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace nmapsim {
namespace {

/**
 * NOTE: the health detector reschedules itself forever, so these
 * tests always advance time with runUntil(), never runAll().
 */
class FailoverTest : public ::testing::Test
{
  protected:
    static constexpr int kHosts = 2;

    ~FailoverTest() override
    {
        for (auto &ev : events_)
            eq_.deschedule(ev.get());
    }

    /** Build the switch; call once per test, then attach fake hosts. */
    void
    makeSwitch(const std::string &dispatch)
    {
        SwitchConfig cfg;
        cfg.healthInterval = milliseconds(1);
        cfg.healthTimeout = milliseconds(3);
        cfg.ejectDuration = milliseconds(10);
        sw_ = std::make_unique<ClusterSwitch>(
            eq_, cfg, dispatch, std::vector<double>(kHosts, 1.0),
            PolicyParams{});
        sw_->clientPort().setSink(
            [this](const Packet &) { ++clientResponses_; });
        for (int id = 0; id < kHosts; ++id) {
            sw_->downlink(id).setSink([this, id](const Packet &pkt) {
                ++requestsSeen_[id];
                if (!silent_[id]) {
                    Packet resp = pkt;
                    resp.kind = Packet::Kind::kResponse;
                    sw_->fromHost(id, resp);
                }
            });
        }
    }

    /** Send @p n requests, one every @p gap, starting at @p start. */
    void
    offerLoad(Tick start, Tick gap, int n, std::uint32_t flow = 0)
    {
        for (int i = 0; i < n; ++i) {
            events_.push_back(std::make_unique<EventFunctionWrapper>(
                [this, flow, i] {
                    Packet pkt;
                    pkt.requestId = static_cast<std::uint64_t>(i) + 1;
                    pkt.flowHash = flow;
                    pkt.sizeBytes = 128;
                    sw_->fromClient(pkt);
                },
                "test.offer"));
            eq_.schedule(events_.back().get(),
                         start + static_cast<Tick>(i) * gap);
        }
    }

    EventQueue eq_;
    std::unique_ptr<ClusterSwitch> sw_;
    std::vector<std::unique_ptr<EventFunctionWrapper>> events_;
    std::uint64_t clientResponses_ = 0;
    std::uint64_t requestsSeen_[kHosts] = {0, 0};
    bool silent_[kHosts] = {false, false};
};

TEST_F(FailoverTest, DetectorRequiresBothTimeoutAndEjectDuration)
{
    SwitchConfig cfg;
    cfg.healthInterval = milliseconds(1); // timeout/duration missing
    EXPECT_THROW(ClusterSwitch(eq_, cfg, "round-robin",
                               std::vector<double>(kHosts, 1.0),
                               PolicyParams{}),
                 FatalError);
}

TEST_F(FailoverTest, SilentHostIsEjectedAndBypassedByQueuePolicies)
{
    makeSwitch("round-robin");
    silent_[1] = true;
    offerLoad(0, microseconds(500), 40); // 20 ms of load
    eq_.runUntil(milliseconds(8));

    EXPECT_TRUE(sw_->isEjected(1));
    EXPECT_FALSE(sw_->isEjected(0));
    EXPECT_EQ(sw_->ejections(1), 1u);
    // Write-off: the dead host's pending work no longer counts.
    EXPECT_EQ(sw_->outstanding(1), 0u);

    // No request reaches the ejected host while it is out.
    const std::uint64_t atEjection = requestsSeen_[1];
    const std::uint64_t host0AtEjection = requestsSeen_[0];
    eq_.runUntil(milliseconds(12));
    EXPECT_EQ(requestsSeen_[1], atEjection);
    EXPECT_GT(requestsSeen_[0], host0AtEjection); // host 0 absorbs all
}

TEST_F(FailoverTest, AffinityPoliciesRerouteAroundEjectedHost)
{
    makeSwitch("flow-hash");
    // Find a flow that hashes to host 1, then make host 1 silent.
    std::uint32_t flow = 0;
    {
        Packet probe;
        probe.sizeBytes = 128;
        for (std::uint32_t f = 0; f < 64; ++f) {
            probe.flowHash = f;
            sw_->fromClient(probe);
            eq_.runUntil(eq_.now() + microseconds(100));
            if (requestsSeen_[1] > 0) {
                flow = f;
                break;
            }
        }
        ASSERT_GT(requestsSeen_[1], 0u) << "no flow hashed to host 1";
        silent_[1] = true;
        requestsSeen_[0] = requestsSeen_[1] = 0;
    }

    offerLoad(eq_.now(), microseconds(500), 30, flow);
    eq_.runUntil(eq_.now() + milliseconds(20));

    EXPECT_GE(sw_->ejections(1), 1u);
    // Once ejected, the policy's pick is overridden toward a healthy
    // host and counted as a reroute.
    EXPECT_GT(sw_->requestsRerouted(), 0u);
    EXPECT_GT(requestsSeen_[0], 0u);
}

TEST_F(FailoverTest, RecoveredHostIsReadmittedAndServesAgain)
{
    makeSwitch("round-robin");
    silent_[1] = true;
    // Recover the host at 9 ms, well before readmission is due.
    events_.push_back(std::make_unique<EventFunctionWrapper>(
        [this] { silent_[1] = false; }, "test.recover"));
    eq_.schedule(events_.back().get(), milliseconds(9));
    offerLoad(0, microseconds(500), 60); // 30 ms of load
    eq_.runUntil(milliseconds(40));

    // Ejected once (~4 ms), readmitted (~14 ms), never re-ejected.
    EXPECT_EQ(sw_->ejections(1), 1u);
    EXPECT_FALSE(sw_->isEjected(1));
    EXPECT_GT(sw_->responsesReturned(1), 0u);
}

TEST_F(FailoverTest, LossyButAliveHostIsNeverEjected)
{
    makeSwitch("round-robin");
    // Host 1 answers only every other request: lossy, but never
    // silent, so the detector must leave it alone.
    std::uint64_t seen = 0;
    sw_->downlink(1).setSink([this, &seen](const Packet &pkt) {
        ++requestsSeen_[1];
        if (++seen % 2 == 0) {
            Packet resp = pkt;
            resp.kind = Packet::Kind::kResponse;
            sw_->fromHost(1, resp);
        }
    });
    // Keep the load flowing past the observation point: once traffic
    // (and with it the every-other response) stops, a backlogged host
    // really is silent and *should* eventually be ejected.
    offerLoad(0, microseconds(500), 80); // 40 ms of load
    eq_.runUntil(milliseconds(38));
    EXPECT_EQ(sw_->totalEjections(), 0u);
    EXPECT_FALSE(sw_->isEjected(1));
}

TEST_F(FailoverTest, LateResponseFromWrittenOffHostIsCounted)
{
    makeSwitch("round-robin");
    silent_[1] = true;
    offerLoad(0, microseconds(500), 20);
    eq_.runUntil(milliseconds(8));
    ASSERT_TRUE(sw_->isEjected(1));
    ASSERT_EQ(sw_->outstanding(1), 0u);

    // The host finally answers a written-off request.
    Packet resp;
    resp.kind = Packet::Kind::kResponse;
    resp.sizeBytes = 128;
    sw_->fromHost(1, resp);
    EXPECT_EQ(sw_->lateResponses(), 1u);
}

TEST_F(FailoverTest, AllHostsEjectedDegradesToHealthBlindDispatch)
{
    makeSwitch("round-robin");
    silent_[0] = true;
    silent_[1] = true;
    offerLoad(0, microseconds(500), 40);
    eq_.runUntil(milliseconds(8));
    EXPECT_TRUE(sw_->isEjected(0));
    EXPECT_TRUE(sw_->isEjected(1));

    // Requests still go somewhere (the policy's pick) rather than
    // being dropped on the floor by the switch itself.
    const std::uint64_t before =
        requestsSeen_[0] + requestsSeen_[1];
    eq_.runUntil(milliseconds(10));
    EXPECT_GT(requestsSeen_[0] + requestsSeen_[1], before);
}

} // namespace
} // namespace nmapsim
