#!/usr/bin/env bash
# Byte-parity gate for the bench suite across engine changes.
#
# Runs every bench whose baseline stdout is pinned under
# tests/golden/bench/ and diffs the output byte-for-byte. The baselines
# were captured before the calendar-queue/pooling engine rewrite, so a
# mismatch means the engine changed simulation *behaviour*, not just
# speed — exactly what the rewrite promised not to do.
#
# Usage: tools/check_bench_parity.sh [build-dir] [baseline-dir]
#
# Baselines are pinned at a fixed scale/parallelism so the runs are
# cheap and scheduling-independent; regenerate them (only for an
# intentional output change, reviewed like a golden change) with:
#   for f in tests/golden/bench/*.stdout; do b=$(basename "$f" .stdout);
#     NMAPSIM_BENCH_SCALE=0.05 NMAPSIM_JOBS=4 "build/bench/$b" > "$f";
#   done

set -u

BUILD_DIR="${1:-build}"
BASELINE_DIR="${2:-tests/golden/bench}"

export NMAPSIM_BENCH_SCALE="${NMAPSIM_BENCH_SCALE:-0.05}"
export NMAPSIM_JOBS="${NMAPSIM_JOBS:-4}"

if [ ! -d "$BASELINE_DIR" ]; then
    echo "check_bench_parity: no baseline dir at $BASELINE_DIR" >&2
    exit 2
fi

# The pre-existing baselines captured before the engine rewrite. A
# baseline silently deleted or renamed would drop out of the *.stdout
# glob and the gate would pass vacuously; require every one of these
# to still be pinned. New benches append their own baselines freely —
# this list only grows, never shrinks.
REQUIRED_BASELINES="
ablation_adaptive ablation_chipwide ablation_idle_governors
ablation_retransition ablation_thresholds ablation_timer_itr
ext_bypass ext_chaos ext_cluster ext_colocation ext_metastable
ext_tiers ext_usec_slo
fig02_napi_modes fig03_latency_trace fig04_latency_cdf
fig07_cc6_trace fig08_sleep_policies fig09_nmap_trace
fig10_nmap_latency_trace fig11_nmap_cdf fig12_p99_comparison
fig13_energy_comparison fig14_sota_p99 fig15_sota_energy
fig16_varying_load table1_retransition table2_wakeup
"
missing=0
for name in $REQUIRED_BASELINES; do
    if [ ! -f "$BASELINE_DIR/$name.stdout" ]; then
        echo "FAIL  $name: pinned baseline missing from $BASELINE_DIR" >&2
        missing=$((missing + 1))
    fi
done
if [ "$missing" -ne 0 ]; then
    echo "check_bench_parity: $missing pre-existing baselines missing" >&2
    exit 1
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

failures=0
total=0
for baseline in "$BASELINE_DIR"/*.stdout; do
    name="$(basename "$baseline" .stdout)"
    bin="$BUILD_DIR/bench/$name"
    total=$((total + 1))
    if [ ! -x "$bin" ]; then
        echo "FAIL  $name: bench binary missing at $bin" >&2
        failures=$((failures + 1))
        continue
    fi
    out="$tmpdir/$name.stdout"
    if ! "$bin" > "$out" 2> "$tmpdir/$name.stderr"; then
        echo "FAIL  $name: bench exited non-zero" >&2
        sed 's/^/      /' "$tmpdir/$name.stderr" >&2
        failures=$((failures + 1))
        continue
    fi
    if ! cmp -s "$baseline" "$out"; then
        echo "FAIL  $name: output diverged from baseline" >&2
        diff -u "$baseline" "$out" | head -40 | sed 's/^/      /' >&2
        failures=$((failures + 1))
    else
        echo "ok    $name"
    fi
done

echo
if [ "$failures" -ne 0 ]; then
    echo "check_bench_parity: $failures of $total benches diverged" >&2
    exit 1
fi
echo "check_bench_parity: all $total benches byte-identical"
