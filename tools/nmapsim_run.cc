/**
 * @file
 * nmapsim_run — run one simulation from the declarative config
 * pipeline, no C++ required.
 *
 *     nmapsim_run --policy=nmap --idle=menu --load=high --json=out.json
 *     nmapsim_run --app=nginx --policy=ondemand --csv=out.csv
 *     nmapsim_run --config=point.cfg --set nmap.ni_th=13 --print-config
 *     nmapsim_run --hosts=4 --dispatch=flow-hash --policy=NMAP
 *     nmapsim_run --list-policies
 *
 * Flags are thin sugar over config keys (see harness/config_io.hh):
 * `--policy=X` is `--set freq_policy=X`, and any key the config format
 * accepts works with `--set`, including the per-policy `<policy>.<knob>`
 * tunables of newly registered governors. Results go to stdout as a
 * table and, with --json/--csv, through the shared ResultWriter.
 *
 * Any cluster-claimed key (`--hosts`, `--dispatch`, `cluster.*`,
 * `host<i>.*`; see harness/cluster_io.hh) switches the tool into
 * cluster mode: the same base config drives N hosts behind the modeled
 * switch, per-host overrides like `--set host1.freq_policy=ondemand`
 * make the cluster heterogeneous, and the output becomes the cluster
 * aggregate plus a per-host table.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/dispatch.hh"
#include "dataplane/plan.hh"
#include "dataplane/policy.hh"
#include "harness/cluster_io.hh"
#include "harness/config_io.hh"
#include "harness/policy_registry.hh"
#include "harness/result_io.hh"
#include "resilience/admission.hh"
#include "resilience/plan.hh"
#include "stats/table.hh"

using namespace nmapsim;

namespace {

void
usage()
{
    std::printf(
        "nmapsim_run — drive one nmapsim experiment from flags\n\n"
        "  --policy=NAME      frequency policy (--list-policies)\n"
        "  --idle=NAME        sleep policy (--list-policies)\n"
        "  --app=NAME         memcached | nginx | keyvalue-us\n"
        "  --load=LEVEL       low | med | high\n"
        "  --cores=N          number of cores\n"
        "  --rps=X            override burst height (RPS during burst)\n"
        "  --duration=DUR     measurement window (e.g. 500ms, 2s)\n"
        "  --warmup=DUR       warmup window before measurement\n"
        "  --seed=N           RNG seed\n"
        "  --hosts=N          cluster mode: N hosts behind the switch\n"
        "  --dispatch=NAME    cluster request steering policy\n"
        "  --dataplane=MODE   napi (default) | bypass; bypass runs\n"
        "                     dedicated poll cores (dataplane.* keys\n"
        "                     tune it, e.g. dataplane.policy=metronome)\n"
        "  --set KEY=VALUE    set any config key (repeatable); policy\n"
        "                     tunables pass through, e.g. nmap.ni_th=13;\n"
        "                     cluster keys (cluster.*, host<i>.*) switch\n"
        "                     to cluster mode; resilience.* keys arm\n"
        "                     overload control (admission control,\n"
        "                     retry budgets, circuit breakers)\n"
        "  --fault KEY=VALUE  fault-plan sugar: --fault wire_loss=0.01\n"
        "                     is --set fault.wire_loss=0.01\n"
        "  --config=FILE      load a key=value config file first\n"
        "  --print-config     print the resolved config and exit\n"
        "  --json=PATH        append the run record as JSON\n"
        "  --csv=PATH         append the run record as CSV\n"
        "  --list-policies    list registered policies and exit\n"
        "  --help             this text\n");
}

void
listPolicies()
{
    PolicyRegistry &reg = PolicyRegistry::instance();
    std::printf("frequency policies:\n");
    for (const std::string &name : reg.freqNames()) {
        std::string help = reg.freqHelp(name);
        std::printf("  %-16s %s\n", name.c_str(), help.c_str());
    }
    std::printf("sleep policies:\n");
    for (const std::string &name : reg.idleNames()) {
        std::string help = reg.idleHelp(name);
        std::printf("  %-16s %s\n", name.c_str(), help.c_str());
    }
    DispatchRegistry &dreg = DispatchRegistry::instance();
    std::printf("dispatch policies (cluster mode):\n");
    for (const std::string &name : dreg.names()) {
        std::string help = dreg.help(name);
        std::printf("  %-16s %s\n", name.c_str(), help.c_str());
    }
    DataplanePolicyRegistry &preg = DataplanePolicyRegistry::instance();
    std::printf("dataplane policies (--dataplane=bypass):\n");
    for (const std::string &name : preg.names()) {
        std::string help = preg.help(name);
        std::printf("  %-16s %s\n", name.c_str(), help.c_str());
    }
    AdmissionPolicyRegistry &areg = AdmissionPolicyRegistry::instance();
    std::printf("admission policies (resilience.admission):\n");
    for (const std::string &name : areg.names()) {
        std::string help = areg.help(name);
        std::printf("  %-16s %s\n", name.c_str(), help.c_str());
    }
}

/** Split "--flag=value" / "--flag value" into (flag, value). */
struct Flag
{
    std::string name;
    std::string value;
    bool hasValue = false;
};

Flag
parseFlag(int argc, char **argv, int &i)
{
    Flag f;
    std::string arg = argv[i];
    std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
        f.name = arg.substr(0, eq);
        f.value = arg.substr(eq + 1);
        f.hasValue = true;
        return f;
    }
    f.name = arg;
    if (i + 1 < argc && argv[i + 1][0] != '-') {
        f.value = argv[++i];
        f.hasValue = true;
    }
    return f;
}

/** True when the config asks for faults or client retries: the extra
 *  robustness rows print only then, keeping fault-free stdout
 *  byte-identical to earlier releases. */
bool
faultsConfigured(const ExperimentConfig &cfg)
{
    for (const auto &[key, value] : cfg.params) {
        (void)value;
        if (key.rfind("fault.", 0) == 0 ||
            key.rfind("client.", 0) == 0)
            return true;
    }
    return false;
}

/** Cluster mode: run, print aggregate + per-host tables, serialise. */
int
runCluster(const ClusterConfig &ccfg, const std::string &json_path,
           const std::string &csv_path)
{
    const ExperimentConfig &cfg = ccfg.base;
    ClusterExperiment exp(ccfg);
    // The experiment derives the host count from a topology.* block;
    // print the derived value, not the pre-derivation config field.
    std::printf("hosts=%d dispatch=%s app=%s policy=%s idle=%s "
                "load=%s cores=%d duration=%.0fms seed=%llu\n",
                exp.config().numHosts, ccfg.dispatch.c_str(),
                cfg.app.name.c_str(), cfg.freqPolicy.c_str(),
                cfg.idlePolicy.c_str(), loadLevelName(cfg.load),
                cfg.numCores, toMilliseconds(cfg.duration),
                static_cast<unsigned long long>(cfg.seed));

    ClusterResult r = exp.run();

    Table table({"metric", "value"});
    table.addRow(
        {"P50 latency (us)", Table::num(toMicroseconds(r.p50), 1)});
    table.addRow(
        {"P99 latency (us)", Table::num(toMicroseconds(r.p99), 1)});
    table.addRow({"P99 / SLO",
                  Table::num(static_cast<double>(r.p99) /
                                 static_cast<double>(r.slo),
                             3)});
    table.addRow({"requests over SLO (%)",
                  Table::num(r.fracOverSlo * 100.0, 3)});
    table.addRow({"energy (J)", Table::num(r.energyJoules, 2)});
    table.addRow(
        {"avg cluster power (W)", Table::num(r.avgPowerWatts, 2)});
    table.addRow({"requests sent", std::to_string(r.requestsSent)});
    table.addRow(
        {"responses received", std::to_string(r.responsesReceived)});
    table.addRow(
        {"requests forwarded", std::to_string(r.requestsForwarded)});
    table.addRow(
        {"switch port drops", std::to_string(r.switchPortDrops)});
    table.addRow(
        {"host NIC drops", std::to_string(r.hostNicDrops)});
    if (faultsConfigured(cfg) || ccfg.fabric.healthInterval > 0) {
        table.addRow({"availability",
                      Table::num(r.availability, 4)});
        table.addRow({"goodput (RPS)", Table::num(r.goodputRps, 0)});
        table.addRow({"requests timed out",
                      std::to_string(r.requestsTimedOut)});
        table.addRow(
            {"retransmits", std::to_string(r.retransmits)});
        table.addRow({"requests in flight",
                      std::to_string(r.requestsInFlight)});
        table.addRow({"fault pkts lost",
                      std::to_string(r.faultPacketsLost)});
        table.addRow({"fault pkts corrupted",
                      std::to_string(r.faultPacketsCorrupted)});
        table.addRow({"link-down drops",
                      std::to_string(r.linkDownDrops)});
        table.addRow({"ejections", std::to_string(r.ejections)});
        table.addRow({"requests rerouted",
                      std::to_string(r.requestsRerouted)});
        if (r.attemptP99 > 0)
            table.addRow({"attempt P99 (us)",
                          Table::num(toMicroseconds(r.attemptP99),
                                     1)});
    }
    // Resilience rows print only when a resilience.* plan is set, so
    // pre-resilience stdout stays byte-identical.
    if (ResiliencePlan::fromParams(cfg.params).enabled()) {
        table.addRow(
            {"requests shed", std::to_string(r.requestsShed)});
        table.addRow({"retry budget exhausted",
                      std::to_string(r.retryBudgetExhausted)});
        table.addRow(
            {"shed (admission)", std::to_string(r.shedAdmission)});
        table.addRow(
            {"shed (sojourn)", std::to_string(r.shedSojourn)});
        table.addRow({"shed (deadline)",
                      std::to_string(r.shedDeadline +
                                     r.switchDeadlineSheds)});
        table.addRow({"breaker short-circuits",
                      std::to_string(r.breakerShortCircuits)});
        table.addRow({"breaker transitions",
                      std::to_string(r.breakerTransitions)});
    }
    table.print(std::cout);

    if (!r.tiers.empty()) {
        Table tiers({"tier", "hosts", "dispatch", "hops",
                     "hop p50 (us)", "hop p99 (us)", "over SLO (%)",
                     "p99 share", "energy (J)"});
        for (const ClusterTierResult &t : r.tiers)
            tiers.addRow({t.name, std::to_string(t.hosts),
                          t.dispatch, std::to_string(t.completions),
                          Table::num(toMicroseconds(t.hopP50), 1),
                          Table::num(toMicroseconds(t.hopP99), 1),
                          Table::num(t.fracOverSlo * 100.0, 3),
                          Table::num(t.p99Share, 3),
                          Table::num(t.energyJoules, 2)});
        tiers.print(std::cout);
    }

    const bool tiered = !r.tiers.empty();
    std::vector<std::string> host_cols{
        "host", "freq policy", "idle policy", "served", "p99 (us)",
        "energy (J)", "power (W)", "busy"};
    if (tiered) {
        host_cols.insert(host_cols.begin() + 1, "tier");
        host_cols.insert(host_cols.begin() + 5, "forwarded");
    }
    Table hosts(host_cols);
    for (const ClusterHostResult &h : r.hosts) {
        std::vector<std::string> row{
            std::to_string(h.id), h.freqPolicy, h.idlePolicy,
            std::to_string(h.served),
            Table::num(toMicroseconds(h.p99), 1),
            Table::num(h.energyJoules, 2),
            Table::num(h.avgPowerWatts, 2),
            Table::num(h.busyFraction, 3)};
        if (tiered) {
            row.insert(row.begin() + 1, h.tierName);
            row.insert(row.begin() + 5, std::to_string(h.forwarded));
        }
        hosts.addRow(row);
    }
    hosts.print(std::cout);

    if (!json_path.empty() || !csv_path.empty()) {
        ResultWriter writer;
        appendClusterResultRecord(writer, ccfg, r);
        if (!json_path.empty()) {
            writer.writeJsonFile(json_path);
            std::printf("wrote %s\n", json_path.c_str());
        }
        if (!csv_path.empty()) {
            writer.writeCsvFile(csv_path);
            std::printf("wrote %s\n", csv_path.c_str());
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ensureBuiltinPolicies();
    ensureBuiltinDispatchPolicies();
    ensureBuiltinDataplanePolicies();
    ensureBuiltinAdmissionPolicies();

    ClusterConfig ccfg;
    ExperimentConfig &cfg = ccfg.base;
    bool cluster_mode = false;
    bool print_config = false;
    std::string json_path;
    std::string csv_path;

    auto apply = [&ccfg, &cluster_mode](const std::string &key,
                                        const std::string &value) {
        if (setClusterConfigValue(ccfg, key, value))
            cluster_mode = true;
    };

    auto need = [](const Flag &f) -> const std::string & {
        if (!f.hasValue) {
            std::fprintf(stderr, "missing value for %s\n",
                         f.name.c_str());
            std::exit(2);
        }
        return f.value;
    };

    for (int i = 1; i < argc; ++i) {
        Flag f = parseFlag(argc, argv, i);
        try {
            if (f.name == "--help") {
                usage();
                return 0;
            } else if (f.name == "--list-policies") {
                listPolicies();
                return 0;
            } else if (f.name == "--policy") {
                setConfigValue(cfg, "freq_policy", need(f));
            } else if (f.name == "--idle") {
                setConfigValue(cfg, "idle_policy", need(f));
            } else if (f.name == "--app") {
                setConfigValue(cfg, "app", need(f));
            } else if (f.name == "--load") {
                setConfigValue(cfg, "load", need(f));
            } else if (f.name == "--cores") {
                setConfigValue(cfg, "cores", need(f));
            } else if (f.name == "--rps") {
                setConfigValue(cfg, "rps_override", need(f));
            } else if (f.name == "--duration") {
                setConfigValue(cfg, "duration", need(f));
            } else if (f.name == "--warmup") {
                setConfigValue(cfg, "warmup", need(f));
            } else if (f.name == "--seed") {
                setConfigValue(cfg, "seed", need(f));
            } else if (f.name == "--hosts") {
                apply("hosts", need(f));
            } else if (f.name == "--dispatch") {
                apply("dispatch", need(f));
            } else if (f.name == "--dataplane") {
                apply("dataplane.mode", need(f));
            } else if (f.name == "--set") {
                const std::string &kv = need(f);
                std::size_t eq = kv.find('=');
                if (eq == std::string::npos) {
                    std::fprintf(stderr,
                                 "--set expects KEY=VALUE, got '%s'\n",
                                 kv.c_str());
                    return 2;
                }
                apply(kv.substr(0, eq), kv.substr(eq + 1));
            } else if (f.name == "--fault") {
                const std::string &kv = need(f);
                std::size_t eq = kv.find('=');
                if (eq == std::string::npos) {
                    std::fprintf(
                        stderr,
                        "--fault expects KEY=VALUE, got '%s'\n",
                        kv.c_str());
                    return 2;
                }
                apply("fault." + kv.substr(0, eq),
                      kv.substr(eq + 1));
            } else if (f.name == "--config") {
                std::ifstream is(need(f));
                if (!is) {
                    std::fprintf(stderr, "cannot read '%s'\n",
                                 f.value.c_str());
                    return 2;
                }
                std::ostringstream text;
                text << is.rdbuf();
                ccfg = ClusterConfig{};
                cluster_mode = false;
                std::istringstream lines(text.str());
                std::string line;
                while (std::getline(lines, line)) {
                    std::string t = line;
                    std::size_t b = t.find_first_not_of(" \t\r");
                    if (b == std::string::npos)
                        continue;
                    std::size_t e2 = t.find_last_not_of(" \t\r");
                    t = t.substr(b, e2 - b + 1);
                    if (t.empty() || t[0] == '#')
                        continue;
                    std::size_t keq = t.find('=');
                    if (keq == std::string::npos) {
                        std::fprintf(stderr,
                                     "config: expected key=value, "
                                     "got '%s'\n",
                                     t.c_str());
                        return 2;
                    }
                    auto trimmed = [](std::string s) {
                        std::size_t sb = s.find_first_not_of(" \t");
                        if (sb == std::string::npos)
                            return std::string();
                        std::size_t se = s.find_last_not_of(" \t");
                        return s.substr(sb, se - sb + 1);
                    };
                    apply(trimmed(t.substr(0, keq)),
                          trimmed(t.substr(keq + 1)));
                }
            } else if (f.name == "--print-config") {
                print_config = true;
            } else if (f.name == "--json") {
                json_path = need(f);
            } else if (f.name == "--csv") {
                csv_path = need(f);
            } else {
                std::fprintf(stderr,
                             "unknown flag: %s (see --help)\n",
                             f.name.c_str());
                return 2;
            }
        } catch (const std::exception &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 2;
        }
    }

    if (print_config) {
        std::fputs(cluster_mode ? printClusterConfig(ccfg).c_str()
                                : printConfig(cfg).c_str(),
                   stdout);
        return 0;
    }

    // Unknown names fail here, before the simulation spins up.
    PolicyRegistry &reg = PolicyRegistry::instance();
    try {
        if (!reg.hasFreq(cfg.freqPolicy))
            fatal("unknown frequency policy '" + cfg.freqPolicy +
                  "' (see --list-policies)");
        if (!reg.hasIdle(cfg.idlePolicy))
            fatal("unknown sleep policy '" + cfg.idlePolicy +
                  "' (see --list-policies)");
        if (cluster_mode)
            return runCluster(ccfg, json_path, csv_path);

        std::printf("app=%s policy=%s idle=%s load=%s cores=%d "
                    "duration=%.0fms seed=%llu\n",
                    cfg.app.name.c_str(), cfg.freqPolicy.c_str(),
                    cfg.idlePolicy.c_str(), loadLevelName(cfg.load),
                    cfg.numCores, toMilliseconds(cfg.duration),
                    static_cast<unsigned long long>(cfg.seed));

        ExperimentResult r = Experiment(cfg).run();

        Table table({"metric", "value"});
        table.addRow({"P50 latency (us)",
                      Table::num(toMicroseconds(r.p50), 1)});
        table.addRow({"P99 latency (us)",
                      Table::num(toMicroseconds(r.p99), 1)});
        table.addRow(
            {"P99 / SLO",
             Table::num(static_cast<double>(r.p99) /
                            static_cast<double>(r.slo),
                        3)});
        table.addRow({"requests over SLO (%)",
                      Table::num(r.fracOverSlo * 100.0, 3)});
        table.addRow({"energy (J)", Table::num(r.energyJoules, 2)});
        table.addRow({"avg package power (W)",
                      Table::num(r.avgPowerWatts, 2)});
        table.addRow(
            {"requests sent", std::to_string(r.requestsSent)});
        table.addRow({"responses received",
                      std::to_string(r.responsesReceived)});
        table.addRow({"NIC drops", std::to_string(r.nicDrops)});
        table.addRow(
            {"pkts interrupt mode", std::to_string(r.pktsIntrMode)});
        table.addRow(
            {"pkts polling mode", std::to_string(r.pktsPollMode)});
        table.addRow(
            {"ksoftirqd wakes", std::to_string(r.ksoftirqdWakes)});
        table.addRow(
            {"V/F transitions", std::to_string(r.pstateTransitions)});
        table.addRow({"CC6 wakes", std::to_string(r.cc6Wakes)});
        table.addRow({"mean core busy fraction",
                      Table::num(r.busyFraction, 3)});
        if (r.niThresholdUsed > 0.0) {
            table.addRow(
                {"NI_TH used", Table::num(r.niThresholdUsed, 1)});
            table.addRow(
                {"CU_TH used", Table::num(r.cuThresholdUsed, 2)});
        }
        // Bypass rows only for bypass runs: default-mode stdout stays
        // byte-identical to earlier releases.
        if (DataplanePlan::fromParams(cfg.params).bypass()) {
            table.addRow({"bypass poll loops",
                          std::to_string(r.bypassPollLoops)});
            table.addRow({"bypass empty polls",
                          std::to_string(r.bypassEmptyPolls)});
            table.addRow({"bypass poll sleeps",
                          std::to_string(r.bypassSleeps)});
            table.addRow(
                {"bypass sleep residency (ms)",
                 Table::num(toMilliseconds(r.bypassSleepResidency),
                            2)});
            table.addRow({"wasted poll energy (J)",
                          Table::num(r.bypassWastedPollEnergy, 3)});
        }
        if (faultsConfigured(cfg)) {
            table.addRow({"availability",
                          Table::num(r.availability, 4)});
            table.addRow({"requests timed out",
                          std::to_string(r.requestsTimedOut)});
            table.addRow(
                {"retransmits", std::to_string(r.retransmits)});
            table.addRow({"requests in flight",
                          std::to_string(r.requestsInFlight)});
            table.addRow({"duplicate responses",
                          std::to_string(r.duplicateResponses)});
            table.addRow({"fault pkts lost",
                          std::to_string(r.faultPacketsLost)});
            table.addRow({"fault pkts corrupted",
                          std::to_string(r.faultPacketsCorrupted)});
            table.addRow({"link-down drops",
                          std::to_string(r.linkDownDrops)});
            if (r.attemptP99 > 0)
                table.addRow(
                    {"attempt P99 (us)",
                     Table::num(toMicroseconds(r.attemptP99), 1)});
        }
        if (ResiliencePlan::fromParams(cfg.params).enabled()) {
            table.addRow(
                {"requests shed", std::to_string(r.requestsShed)});
            table.addRow({"retry budget exhausted",
                          std::to_string(r.retryBudgetExhausted)});
            table.addRow({"shed (admission)",
                          std::to_string(r.shedAdmission)});
            table.addRow(
                {"shed (sojourn)", std::to_string(r.shedSojourn)});
            table.addRow(
                {"shed (deadline)", std::to_string(r.shedDeadline)});
        }
        table.print(std::cout);

        if (!json_path.empty() || !csv_path.empty()) {
            ResultWriter writer;
            appendResultRecord(writer, cfg, r);
            if (!json_path.empty()) {
                writer.writeJsonFile(json_path);
                std::printf("wrote %s\n", json_path.c_str());
            }
            if (!csv_path.empty()) {
                writer.writeCsvFile(csv_path);
                std::printf("wrote %s\n", csv_path.c_str());
            }
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    return 0;
}
