/**
 * @file
 * nmaplint core: a repo-aware determinism & model-integrity linter.
 *
 * nmapsim's central promise is that every experiment is
 * bit-reproducible: the same config produces byte-identical
 * ResultWriter output on every run, which is what lets the bench
 * stdouts be pinned across refactors and NMAP be compared fairly
 * against the baselines. nmaplint turns that convention into a checked
 * property with a small set of source-level rules (banned wall-clock /
 * random / environment reads, unordered-container iteration, raw
 * stdout writes, header hygiene, registration hygiene).
 *
 * The tool is a line/token scanner, not a compiler frontend: each file
 * is loaded once and split into a raw view (for waiver comments) and a
 * code view in which comments are blanked and string/char literal
 * *contents* are blanked while the quotes survive — so rules can match
 * tokens and balance parentheses without tripping over prose in doc
 * comments or literals.
 *
 * The pass runs in two phases:
 *
 *  1. Per-file rules (LintRule) see one FileContext at a time and run
 *     embarrassingly parallel under `--jobs N`.
 *  2. Project rules (ProjectRule) see the whole loaded tree through a
 *     ProjectContext — the `#include` graph, every file's waiver
 *     usage, and non-source documents like README.md — and check
 *     cross-translation-unit properties: the module layering DAG,
 *     the shared-mutable-state race surface, config-key/doc sync and
 *     stale waivers.
 *
 * Rules self-register through LintRuleRegistry, mirroring the
 * simulator's PolicyRegistry idiom (src/harness/policy_registry.hh):
 *
 *     // in tools/nmaplint/rules_<mine>.cc
 *     namespace {
 *     class MyRule : public LintRule { ... };
 *     REGISTER_LINT_RULE("my-rule", &makeMyRule, "my-ok",
 *                        "one-line description");
 *     } // namespace
 *
 * Project rules use REGISTER_PROJECT_RULE with the same shape; both
 * families share one id and waiver-token namespace.
 *
 * Every rule has a waiver token: a finding on line L is suppressed iff
 * a `// lint: <token>(<reason>)` comment with a nonempty reason sits
 * on line L, on an immediately preceding comment-only line, or
 * trailing the first line of the multi-line statement containing L.
 * Reason-less or unknown-token waivers are themselves findings (rule
 * `bad-waiver`), and a well-formed waiver that no longer suppresses
 * anything is flagged by the `stale-waiver` project rule — waiving is
 * cheap but always leaves a live audit trail.
 */

#ifndef NMAPSIM_TOOLS_NMAPLINT_LINT_HH_
#define NMAPSIM_TOOLS_NMAPLINT_LINT_HH_

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nmaplint {

/** One reported problem: `file:line: rule-id: message`. */
struct Finding
{
    std::string file; //!< repo-relative path, '/'-separated
    int line = 0;     //!< 1-based
    std::string rule;
    std::string message;

    /** Sort key: file, then line, then rule id. */
    friend bool
    operator<(const Finding &a, const Finding &b)
    {
        if (a.file != b.file)
            return a.file < b.file;
        if (a.line != b.line)
            return a.line < b.line;
        return a.rule < b.rule;
    }
};

/** A loaded source file with raw and literal-blanked views. */
class FileContext
{
  public:
    /** @param relPath repo-relative path with forward slashes.
     *  @param text    full file contents. */
    FileContext(std::string relPath, const std::string &text);

    const std::string &path() const { return path_; }

    /** Original lines (waiver comments live here). 0-based index. */
    const std::vector<std::string> &raw() const { return raw_; }

    /** Lines with comments blanked and literal contents blanked
     *  (quote characters survive, so `""` vs `"x"` is decidable). */
    const std::vector<std::string> &code() const { return code_; }

    /** The code view joined with '\n' for cross-line matching. */
    const std::string &codeText() const { return codeText_; }

    /** 1-based line number holding codeText() offset @p pos. */
    int lineOf(std::size_t pos) const;

    /** True when path() starts with @p prefix (e.g. "src/"). */
    bool under(std::string_view prefix) const;

    /** True for .h / .hh / .hpp files. */
    bool isHeader() const;

    /** Raw literal/comment text behind code-view offsets
     *  [@p begin, @p end): the code and raw views are byte-aligned, so
     *  blanked literal contents can be recovered exactly. */
    std::string rawSlice(std::size_t begin, std::size_t end) const;

  private:
    std::string path_;
    std::vector<std::string> raw_;
    std::string rawText_;
    std::vector<std::string> code_;
    std::string codeText_;
    std::vector<std::size_t> lineStart_; //!< codeText_ offsets
};

/** @name Token matching on the code view
 * Identifier-boundary-aware search: `findToken(s, "time")` matches
 * `time` and `std::time` but neither `wallTime` nor `time_point`.
 */
/**@{*/

/** True iff an identifier token equal to @p tok starts at @p pos. */
bool tokenAt(std::string_view code, std::size_t pos,
             std::string_view tok);

/** Offset of the first token match at or after @p from, or npos. */
std::size_t findToken(std::string_view code, std::string_view tok,
                      std::size_t from = 0);

bool hasToken(std::string_view code, std::string_view tok);

/** First occurrence of token @p fn directly invoked: `fn (`.
 *  Returns npos when @p fn never appears as a call. */
std::size_t findCall(std::string_view code, std::string_view fn,
                     std::size_t from = 0);

/** Offset just past the ')' matching the '(' at @p open, balancing
 *  nested parens; npos when unbalanced. Works on the code view, so
 *  parens inside literals/comments cannot desynchronise it. */
std::size_t matchParen(std::string_view code, std::size_t open);

/** Split the text between a call's parens into top-level
 *  comma-separated arguments (nested (), {}, <> and [] respected),
 *  each trimmed. */
std::vector<std::string> splitTopLevelArgs(std::string_view inside);

/**@}*/

/** A `// lint: token(reason)` comment found in a file. */
struct WaiverInfo
{
    int line = 0;        //!< 1-based
    bool wellFormed = false;
    std::string token;
    std::string reason;
};

/** Every waiver comment in @p file, in line order. */
std::vector<WaiverInfo> waiversIn(const FileContext &file);

/** Reported-finding sink handed to per-file rules. */
class Sink
{
  public:
    explicit Sink(const FileContext &file, std::vector<Finding> &out)
        : file_(file), out_(out)
    {
    }

    /** Report @p message at 1-based @p line under @p rule. */
    void
    report(int line, const std::string &rule, const std::string &message)
    {
        out_.push_back(Finding{file_.path(), line, rule, message});
    }

  private:
    const FileContext &file_;
    std::vector<Finding> &out_;
};

/** One lint rule; stateless, instantiated per run. */
class LintRule
{
  public:
    virtual ~LintRule() = default;

    /** Whether the rule scans @p file at all (path scoping). */
    virtual bool appliesTo(const FileContext &file) const = 0;

    /** Scan @p file; report findings through @p sink with this rule's
     *  registered id (passed in so the id lives only at the
     *  registration site). */
    virtual void check(const FileContext &file, const std::string &id,
                       Sink &sink) const = 0;
};

/** One `#include "..."` directive in a loaded file. */
struct IncludeEdge
{
    int line = 0;        //!< 1-based line of the directive
    std::string text;    //!< include path exactly as written
    /** Loaded file the include resolves to (tried as src/<text>,
     *  <dir-of-includer>/<text>, then <text> relative to the repo
     *  root); nullptr when the target was not part of the scan. */
    const FileContext *target = nullptr;
};

/**
 * Everything a project rule can see: the loaded tree, its include
 * graph, per-waiver usage from the per-file phase, and root-relative
 * documents (README.md) for doc-sync rules.
 */
class ProjectContext
{
  public:
    explicit ProjectContext(std::string root);

    /** @name Driver wiring (lintPaths builds the context). */
    /**@{*/
    void addFile(std::unique_ptr<FileContext> file);
    void markWaiverUsed(const std::string &file, int line);
    /** Sorts the file list and builds the include graph. */
    void finalize();
    /**@}*/

    /** Loaded files, sorted by path (iteration order is part of the
     *  deterministic-output contract). */
    const std::vector<const FileContext *> &files() const
    {
        return sorted_;
    }

    /** Loaded file by repo-relative path; nullptr when absent. */
    const FileContext *file(const std::string &relPath) const;

    /** Quoted includes of @p file, in line order. */
    const std::vector<IncludeEdge> &includesOf(
        const FileContext &file) const;

    /** Did any finding consume the waiver comment on (file, line)? */
    bool waiverUsed(const std::string &file, int line) const;

    const std::string &root() const { return root_; }

    /** Read a root-relative non-source file (e.g. "README.md").
     *  Returns false when unreadable; contents are cached. */
    bool readDoc(const std::string &relPath, std::string &out) const;

  private:
    std::string root_;
    std::vector<std::unique_ptr<FileContext>> owned_;
    std::vector<const FileContext *> sorted_;
    std::map<std::string, const FileContext *> byPath_;
    std::map<const FileContext *, std::vector<IncludeEdge>> includes_;
    std::set<std::pair<std::string, int>> usedWaivers_;
    mutable std::map<std::string, std::pair<bool, std::string>> docs_;
};

/** Reported-finding sink handed to project rules (findings may span
 *  any file in the project, including non-source docs). */
class ProjectSink
{
  public:
    explicit ProjectSink(std::vector<Finding> &out) : out_(out) {}

    void
    report(const std::string &file, int line, const std::string &rule,
           const std::string &message)
    {
        out_.push_back(Finding{file, line, rule, message});
    }

  private:
    std::vector<Finding> &out_;
};

/** One project-scoped rule; stateless, instantiated per run. */
class ProjectRule
{
  public:
    virtual ~ProjectRule() = default;

    /** Scan the whole project; report findings through @p sink with
     *  this rule's registered id. */
    virtual void check(const ProjectContext &project,
                       const std::string &id,
                       ProjectSink &sink) const = 0;
};

/** String-keyed lint-rule factories; mirrors PolicyRegistry. Per-file
 *  and project rules share one id and waiver-token namespace. */
class LintRuleRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<LintRule>()>;
    using ProjectFactory =
        std::function<std::unique_ptr<ProjectRule>()>;

    static LintRuleRegistry &instance();

    /** Register per-file rule @p id; throws std::logic_error on
     *  duplicates and on duplicate waiver tokens. */
    void registerRule(const std::string &id, Factory factory,
                      const std::string &waiverToken,
                      const std::string &help);

    /** Register project rule @p id; same uniqueness contract. */
    void registerProjectRule(const std::string &id,
                             ProjectFactory factory,
                             const std::string &waiverToken,
                             const std::string &help);

    struct RuleInfo
    {
        std::string id;
        std::string waiverToken;
        std::string help;
        bool project = false;
    };

    /** Registered rules (both phases), sorted by id (listing output
     *  never depends on registration order). */
    std::vector<RuleInfo> rules() const;

    /** Waiver token for @p ruleId; empty when unknown. */
    std::string waiverToken(const std::string &ruleId) const;

    /** Rule id owning waiver token @p token; empty when unknown. */
    std::string ruleForToken(const std::string &token) const;

    /** Instantiate every registered per-file rule, sorted by id. */
    std::vector<std::pair<std::string, std::unique_ptr<LintRule>>>
    instantiate() const;

    /** Instantiate every registered project rule, sorted by id —
     *  except `stale-waiver`, which always comes last: it audits the
     *  waiver usage every other rule's suppression produces. */
    std::vector<std::pair<std::string, std::unique_ptr<ProjectRule>>>
    instantiateProject() const;

  private:
    struct Entry
    {
        Factory factory;               //!< set for per-file rules
        ProjectFactory projectFactory; //!< set for project rules
        std::string waiverToken;
        std::string help;
    };

    LintRuleRegistry() = default;

    void registerToken(const std::string &id,
                       const std::string &waiverToken);

    std::map<std::string, Entry> rules_;
    std::map<std::string, std::string> tokenToRule_;
};

/** Registers a lint rule at static-initialisation time. */
struct LintRuleRegistrar
{
    LintRuleRegistrar(const std::string &id,
                      LintRuleRegistry::Factory factory,
                      const std::string &waiverToken,
                      const std::string &help)
    {
        LintRuleRegistry::instance().registerRule(id, std::move(factory),
                                                  waiverToken, help);
    }
};

/** Registers a project-scoped lint rule at static-init time. */
struct ProjectRuleRegistrar
{
    ProjectRuleRegistrar(const std::string &id,
                         LintRuleRegistry::ProjectFactory factory,
                         const std::string &waiverToken,
                         const std::string &help)
    {
        LintRuleRegistry::instance().registerProjectRule(
            id, std::move(factory), waiverToken, help);
    }
};

/**
 * Registration shorthand; the lint pass itself checks (rule
 * register-hygiene) that every REGISTER_* use carries a nonempty name
 * literal first and a nonempty doc string last — including these.
 */
#define NMAPLINT_CONCAT_(a, b) a##b
#define NMAPLINT_CONCAT(a, b) NMAPLINT_CONCAT_(a, b)
#define REGISTER_LINT_RULE(id, factory, waiverToken, help)             \
    static const ::nmaplint::LintRuleRegistrar NMAPLINT_CONCAT(        \
        lintRuleRegistrar_, __COUNTER__)(id, factory, waiverToken, help)
#define REGISTER_PROJECT_RULE(id, factory, waiverToken, help)          \
    static const ::nmaplint::ProjectRuleRegistrar NMAPLINT_CONCAT(     \
        projectRuleRegistrar_, __COUNTER__)(id, factory, waiverToken,  \
                                            help)

/**
 * Force the rule TUs' registrar statics out of a static archive (same
 * linker dance as ensureBuiltinPolicies()). Idempotent.
 */
void ensureBuiltinRules();

/**
 * Lint one already-loaded file: run every applicable per-file rule,
 * apply same-line / preceding-comment-line / statement-first-line
 * waivers, and validate waiver comments themselves (`bad-waiver`).
 * Appends to @p out. When @p usedWaiverLines is non-null, the 1-based
 * line of every waiver comment that suppressed at least one finding
 * is appended to it (input to the stale-waiver project rule).
 */
void lintFile(const FileContext &file, std::vector<Finding> &out,
              std::vector<int> *usedWaiverLines = nullptr);

/** Scan controls for lintPaths(). */
struct LintOptions
{
    /** Worker threads for the per-file phase; findings are merged and
     *  sorted afterwards, so output is byte-identical for any value. */
    int jobs = 1;
    /** Run the project phase (include graph + ProjectRules) after the
     *  per-file phase. */
    bool project = false;
};

/**
 * Load and lint @p files (absolute or cwd-relative paths). @p root is
 * the repo root used to derive the repo-relative paths that rules
 * scope on and findings report. Returns findings sorted by
 * (file, line, rule). Unreadable files produce an `io-error` finding.
 */
std::vector<Finding> lintPaths(const std::vector<std::string> &files,
                               const std::string &root,
                               const LintOptions &options = {});

/** Exact waiver comment to paste for @p ruleIdOrToken; empty when the
 *  rule is unknown. */
std::string waiverComment(const std::string &ruleIdOrToken,
                          const std::string &reason);

/** @name Output emitters
 * All emitters consume sorted findings and produce byte-stable text:
 * field order is fixed and nothing depends on scan order or thread
 * count.
 */
/**@{*/

/** `file:line: rule: message` lines, one per finding. */
std::string renderText(const std::vector<Finding> &findings);

/** A stable JSON array of {file, line, rule, message} objects. */
std::string renderJson(const std::vector<Finding> &findings);

/** A SARIF 2.1.0 log: one run, driver "nmaplint", one result per
 *  finding; rule metadata is emitted for every rule that fired. */
std::string renderSarif(const std::vector<Finding> &findings);

/**@}*/

} // namespace nmaplint

#endif // NMAPSIM_TOOLS_NMAPLINT_LINT_HH_
