/**
 * @file
 * nmaplint core: a repo-aware determinism & model-integrity linter.
 *
 * nmapsim's central promise is that every experiment is
 * bit-reproducible: the same config produces byte-identical
 * ResultWriter output on every run, which is what lets the bench
 * stdouts be pinned across refactors and NMAP be compared fairly
 * against the baselines. nmaplint turns that convention into a checked
 * property with a small set of source-level rules (banned wall-clock /
 * random / environment reads, unordered-container iteration, raw
 * stdout writes, header hygiene, registration hygiene).
 *
 * The tool is a line/token scanner, not a compiler frontend: each file
 * is loaded once and split into a raw view (for waiver comments) and a
 * code view in which comments are blanked and string/char literal
 * *contents* are blanked while the quotes survive — so rules can match
 * tokens and balance parentheses without tripping over prose in doc
 * comments or literals.
 *
 * Rules self-register through LintRuleRegistry, mirroring the
 * simulator's PolicyRegistry idiom (src/harness/policy_registry.hh):
 *
 *     // in tools/nmaplint/rules_<mine>.cc
 *     namespace {
 *     class MyRule : public LintRule { ... };
 *     REGISTER_LINT_RULE("my-rule", &makeMyRule, "my-ok",
 *                        "one-line description");
 *     } // namespace
 *
 * Every rule has a waiver token: a finding on line L is suppressed iff
 * line L (or an immediately preceding comment-only line) carries
 * `// lint: <token>(<reason>)` with a nonempty reason. Reason-less or
 * unknown-token waivers are themselves findings (rule `bad-waiver`),
 * so waiving is cheap but always leaves an audit trail.
 */

#ifndef NMAPSIM_TOOLS_NMAPLINT_LINT_HH_
#define NMAPSIM_TOOLS_NMAPLINT_LINT_HH_

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace nmaplint {

/** One reported problem: `file:line: rule-id: message`. */
struct Finding
{
    std::string file; //!< repo-relative path, '/'-separated
    int line = 0;     //!< 1-based
    std::string rule;
    std::string message;

    /** Sort key: file, then line, then rule id. */
    friend bool
    operator<(const Finding &a, const Finding &b)
    {
        if (a.file != b.file)
            return a.file < b.file;
        if (a.line != b.line)
            return a.line < b.line;
        return a.rule < b.rule;
    }
};

/** A loaded source file with raw and literal-blanked views. */
class FileContext
{
  public:
    /** @param relPath repo-relative path with forward slashes.
     *  @param text    full file contents. */
    FileContext(std::string relPath, const std::string &text);

    const std::string &path() const { return path_; }

    /** Original lines (waiver comments live here). 0-based index. */
    const std::vector<std::string> &raw() const { return raw_; }

    /** Lines with comments blanked and literal contents blanked
     *  (quote characters survive, so `""` vs `"x"` is decidable). */
    const std::vector<std::string> &code() const { return code_; }

    /** The code view joined with '\n' for cross-line matching. */
    const std::string &codeText() const { return codeText_; }

    /** 1-based line number holding codeText() offset @p pos. */
    int lineOf(std::size_t pos) const;

    /** True when path() starts with @p prefix (e.g. "src/"). */
    bool under(std::string_view prefix) const;

    /** True for .h / .hh / .hpp files. */
    bool isHeader() const;

  private:
    std::string path_;
    std::vector<std::string> raw_;
    std::vector<std::string> code_;
    std::string codeText_;
    std::vector<std::size_t> lineStart_; //!< codeText_ offsets
};

/** @name Token matching on the code view
 * Identifier-boundary-aware search: `findToken(s, "time")` matches
 * `time` and `std::time` but neither `wallTime` nor `time_point`.
 */
/**@{*/

/** True iff an identifier token equal to @p tok starts at @p pos. */
bool tokenAt(std::string_view code, std::size_t pos,
             std::string_view tok);

/** Offset of the first token match at or after @p from, or npos. */
std::size_t findToken(std::string_view code, std::string_view tok,
                      std::size_t from = 0);

bool hasToken(std::string_view code, std::string_view tok);

/** First occurrence of token @p fn directly invoked: `fn (`.
 *  Returns npos when @p fn never appears as a call. */
std::size_t findCall(std::string_view code, std::string_view fn,
                     std::size_t from = 0);

/** Offset just past the ')' matching the '(' at @p open, balancing
 *  nested parens; npos when unbalanced. Works on the code view, so
 *  parens inside literals/comments cannot desynchronise it. */
std::size_t matchParen(std::string_view code, std::size_t open);

/** Split the text between a call's parens into top-level
 *  comma-separated arguments (nested (), {}, <> and [] respected),
 *  each trimmed. */
std::vector<std::string> splitTopLevelArgs(std::string_view inside);

/**@}*/

/** Reported-finding sink handed to rules. */
class Sink
{
  public:
    explicit Sink(const FileContext &file, std::vector<Finding> &out)
        : file_(file), out_(out)
    {
    }

    /** Report @p message at 1-based @p line under @p rule. */
    void
    report(int line, const std::string &rule, const std::string &message)
    {
        out_.push_back(Finding{file_.path(), line, rule, message});
    }

  private:
    const FileContext &file_;
    std::vector<Finding> &out_;
};

/** One lint rule; stateless, instantiated per run. */
class LintRule
{
  public:
    virtual ~LintRule() = default;

    /** Whether the rule scans @p file at all (path scoping). */
    virtual bool appliesTo(const FileContext &file) const = 0;

    /** Scan @p file; report findings through @p sink with this rule's
     *  registered id (passed in so the id lives only at the
     *  registration site). */
    virtual void check(const FileContext &file, const std::string &id,
                       Sink &sink) const = 0;
};

/** String-keyed lint-rule factories; mirrors PolicyRegistry. */
class LintRuleRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<LintRule>()>;

    static LintRuleRegistry &instance();

    /** Register rule @p id; throws std::logic_error on duplicates and
     *  on duplicate waiver tokens. */
    void registerRule(const std::string &id, Factory factory,
                      const std::string &waiverToken,
                      const std::string &help);

    struct RuleInfo
    {
        std::string id;
        std::string waiverToken;
        std::string help;
    };

    /** Registered rules, sorted by id (listing output never depends on
     *  registration order). */
    std::vector<RuleInfo> rules() const;

    /** Waiver token for @p ruleId; empty when unknown. */
    std::string waiverToken(const std::string &ruleId) const;

    /** Rule id owning waiver token @p token; empty when unknown. */
    std::string ruleForToken(const std::string &token) const;

    /** Instantiate every registered rule, sorted by id. */
    std::vector<std::pair<std::string, std::unique_ptr<LintRule>>>
    instantiate() const;

  private:
    struct Entry
    {
        Factory factory;
        std::string waiverToken;
        std::string help;
    };

    LintRuleRegistry() = default;

    std::map<std::string, Entry> rules_;
    std::map<std::string, std::string> tokenToRule_;
};

/** Registers a lint rule at static-initialisation time. */
struct LintRuleRegistrar
{
    LintRuleRegistrar(const std::string &id,
                      LintRuleRegistry::Factory factory,
                      const std::string &waiverToken,
                      const std::string &help)
    {
        LintRuleRegistry::instance().registerRule(id, std::move(factory),
                                                  waiverToken, help);
    }
};

/**
 * Registration shorthand; the lint pass itself checks (rule
 * register-hygiene) that every REGISTER_* use carries a nonempty name
 * literal first and a nonempty doc string last — including these.
 */
#define NMAPLINT_CONCAT_(a, b) a##b
#define NMAPLINT_CONCAT(a, b) NMAPLINT_CONCAT_(a, b)
#define REGISTER_LINT_RULE(id, factory, waiverToken, help)             \
    static const ::nmaplint::LintRuleRegistrar NMAPLINT_CONCAT(        \
        lintRuleRegistrar_, __COUNTER__)(id, factory, waiverToken, help)

/**
 * Force the rule TUs' registrar statics out of a static archive (same
 * linker dance as ensureBuiltinPolicies()). Idempotent.
 */
void ensureBuiltinRules();

/**
 * Lint one already-loaded file: run every applicable rule, apply
 * same-line / preceding-comment-line waivers, and validate waiver
 * comments themselves (`bad-waiver`). Appends to @p out.
 */
void lintFile(const FileContext &file, std::vector<Finding> &out);

/**
 * Load and lint @p files (absolute or cwd-relative paths). @p root is
 * the repo root used to derive the repo-relative paths that rules
 * scope on and findings report. Returns findings sorted by
 * (file, line, rule). Unreadable files produce an `io-error` finding.
 */
std::vector<Finding> lintPaths(const std::vector<std::string> &files,
                               const std::string &root);

/** Exact waiver comment to paste for @p ruleIdOrToken; empty when the
 *  rule is unknown. */
std::string waiverComment(const std::string &ruleIdOrToken,
                          const std::string &reason);

} // namespace nmaplint

#endif // NMAPSIM_TOOLS_NMAPLINT_LINT_HH_
