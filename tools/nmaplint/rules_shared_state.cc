/**
 * @file
 * Project rule `shared-mutable-state`: the parallel-readiness audit.
 *
 * The ROADMAP's parallel-cluster item will shard hosts across
 * threads; any mutable state shared between simulator instances
 * becomes a data race the day that lands. This rule keeps the race
 * surface machine-verifiably empty *now*: under src/ it flags
 *
 *   - mutable namespace-scope variables (including file-`static` and
 *     `inline` globals), and
 *   - non-`const` `static` locals and static data members,
 *
 * while blessing the two idioms the codebase is built on: Meyer
 * singletons inside an `instance()` accessor (the policy registries —
 * construction is C++11 thread-safe and the maps are frozen after
 * `ensureBuiltin*()`), and `thread_local` storage (per-thread by
 * construction).
 *
 * This is a token-level scanner, not a compiler: `const`-ness is
 * judged by a `const`/`constexpr`/`constinit` token anywhere in the
 * declaration, and a namespace-scope declarator using direct paren
 * initialization (`Foo x(1);`) is indistinguishable from a function
 * declaration and so is not flagged. Both edges are acceptable for
 * this tree: globals here are either absent or registrar/constant
 * data, and the rule's job is to keep it that way.
 */

#include "lint.hh"

#include <cctype>
#include <string>
#include <vector>

namespace nmaplint {
namespace {

bool
isSpace(char c)
{
    return std::isspace(static_cast<unsigned char>(c)) != 0;
}

std::string
trimCopy(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && isSpace(s[b]))
        ++b;
    while (e > b && isSpace(s[e - 1]))
        --e;
    return s.substr(b, e - b);
}

/** First '=' that is an assignment/init (not ==, <=, >=, !=, +=...),
 *  at top nesting level of @p s; npos when none. */
std::size_t
topLevelInitEq(const std::string &s)
{
    int paren = 0, bracket = 0, brace = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '(')
            ++paren;
        else if (c == ')')
            --paren;
        else if (c == '[')
            ++bracket;
        else if (c == ']')
            --bracket;
        else if (c == '{')
            ++brace;
        else if (c == '}')
            --brace;
        else if (c == '=' && paren == 0 && bracket == 0 && brace == 0) {
            const char prev = i > 0 ? s[i - 1] : '\0';
            const char next = i + 1 < s.size() ? s[i + 1] : '\0';
            if (prev == '=' || prev == '!' || prev == '<' ||
                prev == '>' || prev == '+' || prev == '-' ||
                prev == '*' || prev == '/' || prev == '%' ||
                prev == '&' || prev == '|' || prev == '^' ||
                next == '=')
                continue;
            return i;
        }
    }
    return std::string::npos;
}

/** '(' before the init '=' (or anywhere when there is no init) marks
 *  a function declaration / direct-init, which this rule skips. */
bool
looksLikeFunctionDecl(const std::string &head)
{
    const std::size_t eq = topLevelInitEq(head);
    const std::size_t paren = head.find('(');
    if (paren == std::string::npos)
        return false;
    return eq == std::string::npos || paren < eq;
}

bool
hasAnyToken(const std::string &head,
            std::initializer_list<const char *> tokens)
{
    for (const char *tok : tokens) {
        if (hasToken(head, tok))
            return true;
    }
    return false;
}

/** More ')' than '(' means the head is the tail of an enclosing
 *  expression whose earlier parts were consumed by brace boundaries —
 *  e.g. the `, "help")` left over after a lambda argument's closing
 *  brace in a REGISTER_* call — never a declaration. */
bool
unbalancedContinuation(const std::string &head)
{
    int depth = 0;
    for (char c : head) {
        if (c == '(')
            ++depth;
        else if (c == ')' && --depth < 0)
            return true;
    }
    return false;
}

/** Declaration text fit for a one-line finding message: whitespace
 *  runs collapsed, long tails elided. */
std::string
displayDecl(const std::string &decl)
{
    std::string out;
    bool pendingSpace = false;
    for (char c : decl) {
        if (isSpace(c)) {
            pendingSpace = !out.empty();
            continue;
        }
        if (pendingSpace) {
            out += ' ';
            pendingSpace = false;
        }
        out += c;
    }
    if (out.size() > 60) {
        out.resize(57);
        out += "...";
    }
    return out;
}

/** Statement keywords that make a namespace-scope `...;` statement
 *  something other than a variable definition. */
bool
nonVariableStatement(const std::string &head)
{
    return hasAnyToken(head,
                       {"using", "typedef", "extern", "friend",
                        "template", "static_assert", "namespace",
                        "operator", "class", "struct", "enum", "union",
                        "concept", "requires", "return", "goto"});
}

bool
immutableDecl(const std::string &head)
{
    return hasAnyToken(head,
                       {"const", "constexpr", "constinit",
                        "thread_local"});
}

/** What a `{` opens, judged from the statement head before it. */
enum class Ctx
{
    kNamespace,
    kType,
    kFunction,
    kBlock, //!< control blocks, lambdas, bare blocks
    kInit,  //!< brace initializer after `=`
};

struct Frame
{
    Ctx ctx;
    std::string functionName; //!< set for kFunction
    std::string pendingDecl;  //!< namespace-scope head before a
                              //!< kInit/kBlock brace (x = {...})
};

/** Name before the first '(' of a function-definition head. */
std::string
functionNameOf(const std::string &head)
{
    const std::size_t paren = head.find('(');
    if (paren == std::string::npos)
        return std::string();
    std::size_t e = paren;
    while (e > 0 && isSpace(head[e - 1]))
        --e;
    std::size_t b = e;
    while (b > 0 && (std::isalnum(static_cast<unsigned char>(
                         head[b - 1])) != 0 ||
                     head[b - 1] == '_'))
        --b;
    return head.substr(b, e - b);
}

Ctx
classifyBrace(const std::string &head)
{
    const std::string t = trimCopy(head);
    if (hasToken(t, "namespace"))
        return Ctx::kNamespace;
    if (!t.empty() && t.back() == ')')
        return hasAnyToken(t, {"if", "for", "while", "switch", "catch"})
                   ? Ctx::kBlock
                   : Ctx::kFunction;
    // `void f() const noexcept {`, `...) override {` and friends.
    if (t.find('(') != std::string::npos &&
        topLevelInitEq(t) == std::string::npos &&
        hasAnyToken(t, {"const", "noexcept", "override", "final"}))
        return Ctx::kFunction;
    if (topLevelInitEq(t) != std::string::npos)
        return Ctx::kInit;
    if (hasAnyToken(t, {"class", "struct", "union", "enum"}))
        return Ctx::kType;
    return Ctx::kBlock;
}

class SharedStateRule : public ProjectRule
{
  public:
    void
    check(const ProjectContext &project, const std::string &id,
          ProjectSink &sink) const override
    {
        for (const FileContext *file : project.files()) {
            if (!file->under("src/"))
                continue;
            scanFile(*file, id, sink);
        }
    }

  private:
    /** Code view with preprocessor lines blanked: `#define`/`#if`
     *  bodies are not declarations. */
    static std::string
    maskPreprocessor(const FileContext &file)
    {
        std::string text = file.codeText();
        std::size_t lineStart = 0;
        while (lineStart < text.size()) {
            std::size_t nl = text.find('\n', lineStart);
            if (nl == std::string::npos)
                nl = text.size();
            std::size_t first = lineStart;
            while (first < nl && isSpace(text[first]))
                ++first;
            if (first < nl && text[first] == '#') {
                for (std::size_t i = lineStart; i < nl; ++i)
                    text[i] = ' ';
            }
            lineStart = nl + 1;
        }
        return text;
    }

    void
    scanFile(const FileContext &file, const std::string &id,
             ProjectSink &sink) const
    {
        const std::string text = maskPreprocessor(file);
        std::vector<Frame> stack;
        std::string head;
        std::size_t headStart = 0;

        auto atNamespaceScope = [&]() {
            for (const Frame &f : stack) {
                if (f.ctx != Ctx::kNamespace)
                    return false;
            }
            return true;
        };
        auto inBlessedFunction = [&]() {
            for (const Frame &f : stack) {
                if (f.ctx != Ctx::kFunction)
                    continue;
                if (f.functionName == "instance" ||
                    f.functionName.compare(0, 13, "ensureBuiltin") == 0)
                    return true;
            }
            return false;
        };
        auto innermostIsType = [&]() {
            for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
                if (it->ctx == Ctx::kType)
                    return true;
                if (it->ctx == Ctx::kFunction ||
                    it->ctx == Ctx::kBlock || it->ctx == Ctx::kInit)
                    return false;
            }
            return false;
        };
        auto declLine = [&](const std::string &statement) {
            std::size_t off = 0;
            while (off < statement.size() && isSpace(statement[off]))
                ++off;
            return file.lineOf(headStart + off);
        };

        auto checkNamespaceDecl = [&](const std::string &statement) {
            const std::string t = trimCopy(statement);
            if (t.empty() || unbalancedContinuation(t) ||
                nonVariableStatement(t) || immutableDecl(t) ||
                looksLikeFunctionDecl(t))
                return;
            sink.report(file.path(), declLine(statement), id,
                        "mutable namespace-scope state '" +
                            displayDecl(t) +
                            "' is a data race once engines run on "
                            "concurrent threads; make it const, "
                            "thread_local or per-instance");
        };
        auto checkLocalStatic = [&](const std::string &statement) {
            const std::string t = trimCopy(statement);
            if (!hasToken(t, "static") || unbalancedContinuation(t) ||
                immutableDecl(t) || looksLikeFunctionDecl(t) ||
                inBlessedFunction())
                return;
            const bool member = innermostIsType();
            sink.report(
                file.path(), declLine(statement), id,
                std::string(member ? "mutable static data member"
                                   : "non-const function-local "
                                     "static") +
                    " '" + displayDecl(t) +
                    "' is shared across simulator instances; make it "
                    "const, thread_local or per-instance");
        };

        for (std::size_t i = 0; i < text.size(); ++i) {
            const char c = text[i];
            if (c == '{') {
                const Ctx ctx = classifyBrace(head);
                Frame frame;
                frame.ctx = ctx;
                if (ctx == Ctx::kFunction) {
                    frame.functionName = functionNameOf(head);
                } else if ((ctx == Ctx::kInit || ctx == Ctx::kBlock) &&
                           atNamespaceScope()) {
                    // `Foo x = {...};` / `Foo x{...};` at namespace
                    // scope: judge the declarator once `};` closes.
                    frame.pendingDecl = head;
                }
                if (!atNamespaceScope() && ctx != Ctx::kFunction)
                    checkLocalStatic(head);
                stack.push_back(std::move(frame));
                head.clear();
                headStart = i + 1;
            } else if (c == '}') {
                std::string pending;
                if (!stack.empty()) {
                    pending = stack.back().pendingDecl;
                    stack.pop_back();
                }
                head.clear();
                headStart = i + 1;
                if (!pending.empty() && atNamespaceScope()) {
                    // Peek past the brace for the closing ';'.
                    std::size_t j = i + 1;
                    while (j < text.size() && isSpace(text[j]))
                        ++j;
                    if (j < text.size() && text[j] == ';')
                        checkNamespaceDecl(pending);
                }
            } else if (c == ';') {
                if (atNamespaceScope())
                    checkNamespaceDecl(head);
                else
                    checkLocalStatic(head);
                head.clear();
                headStart = i + 1;
            } else {
                head += c;
            }
        }
    }
};

std::unique_ptr<ProjectRule>
makeSharedStateRule()
{
    return std::make_unique<SharedStateRule>();
}

REGISTER_PROJECT_RULE(
    "shared-mutable-state", &makeSharedStateRule, "shared-state-ok",
    "src/ must hold no mutable namespace-scope or static-storage "
    "state outside blessed instance()/ensureBuiltin* singletons: the "
    "parallel-engine roadmap item needs an empty race surface");

} // namespace

// Anchor for ensureBuiltinRules().
void linkSharedStateRule() {}

} // namespace nmaplint
