/**
 * @file
 * Output emitters: text, JSON and SARIF 2.1.0 renderings of a sorted
 * finding list. All three are byte-stable — field order is fixed,
 * rule metadata is sorted, and nothing depends on scan order or the
 * `--jobs` thread count — so golden-file tests can pin them and the
 * serial-vs-parallel byte-identity gate holds for every format.
 */

#include "lint.hh"

#include <set>
#include <string>
#include <vector>

namespace nmaplint {

namespace {

/** Minimal JSON string escaping (quotes, backslashes, control). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char kHex[] = "0123456789abcdef";
                out += "\\u00";
                out += kHex[(c >> 4) & 0xf];
                out += kHex[c & 0xf];
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
quoted(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

/** Help text for @p ruleId; pseudo-rules that never register
 *  (bad-waiver, io-error) get synthesized descriptions so SARIF rule
 *  metadata is complete for every result. */
std::string
ruleHelp(const std::string &ruleId)
{
    if (ruleId == "bad-waiver")
        return "malformed, unknown or reason-less lint waiver comment";
    if (ruleId == "io-error")
        return "a file handed to the linter could not be read";
    for (const auto &info : LintRuleRegistry::instance().rules()) {
        if (info.id == ruleId)
            return info.help;
    }
    return "nmaplint rule";
}

} // namespace

std::string
renderText(const std::vector<Finding> &findings)
{
    std::string out;
    for (const Finding &f : findings) {
        out += f.file;
        out += ':';
        out += std::to_string(f.line);
        out += ": ";
        out += f.rule;
        out += ": ";
        out += f.message;
        out += '\n';
    }
    return out;
}

std::string
renderJson(const std::vector<Finding> &findings)
{
    std::string out = "[\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        out += "  {\"file\": " + quoted(f.file);
        out += ", \"line\": " + std::to_string(f.line);
        out += ", \"rule\": " + quoted(f.rule);
        out += ", \"message\": " + quoted(f.message) + "}";
        if (i + 1 < findings.size())
            out += ',';
        out += '\n';
    }
    out += "]\n";
    return out;
}

std::string
renderSarif(const std::vector<Finding> &findings)
{
    // Rule metadata only for rules that actually fired: findings are
    // sorted by (file, line, rule), so gathering through a std::set
    // keeps the descriptor order independent of scan order too.
    std::set<std::string> fired;
    for (const Finding &f : findings)
        fired.insert(f.rule);

    std::string out;
    out +=
        "{\n"
        "  \"$schema\": \"https://json.schemastore.org/"
        "sarif-2.1.0.json\",\n"
        "  \"version\": \"2.1.0\",\n"
        "  \"runs\": [\n"
        "    {\n"
        "      \"tool\": {\n"
        "        \"driver\": {\n"
        "          \"name\": \"nmaplint\",\n"
        "          \"informationUri\": "
        "\"https://github.com/nmapsim/nmapsim\",\n"
        "          \"rules\": [\n";
    std::size_t ri = 0;
    for (const std::string &rule : fired) {
        out += "            {\"id\": " + quoted(rule) +
               ", \"shortDescription\": {\"text\": " +
               quoted(ruleHelp(rule)) + "}}";
        if (++ri < fired.size())
            out += ',';
        out += '\n';
    }
    out +=
        "          ]\n"
        "        }\n"
        "      },\n"
        "      \"results\": [\n";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const Finding &f = findings[i];
        // SARIF regions are 1-based; io-error findings carry line 0
        // (whole file), which maps to startLine 1.
        const int line = f.line > 0 ? f.line : 1;
        out += "        {\"ruleId\": " + quoted(f.rule) +
               ", \"level\": \"error\", \"message\": {\"text\": " +
               quoted(f.message) +
               "}, \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": " +
               quoted(f.file) +
               "}, \"region\": {\"startLine\": " +
               std::to_string(line) + "}}}]}";
        if (i + 1 < findings.size())
            out += ',';
        out += '\n';
    }
    out +=
        "      ]\n"
        "    }\n"
        "  ]\n"
        "}\n";
    return out;
}

} // namespace nmaplint
