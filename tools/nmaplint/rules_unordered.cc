/**
 * @file
 * Rule `unordered-iter`: flag range-for iteration over unordered
 * containers in src/.
 *
 * Hash-table iteration order is implementation-defined and may vary
 * with libstdc++ version, insertion history or pointer values; once it
 * reaches anything sim-visible (ResultWriter records, stdout tables,
 * event ordering) bit-reproducibility is gone. The rule tracks
 * variables declared with an `unordered_*` type in the same file —
 * enough context for the idioms this codebase uses — and flags any
 * range-for whose range expression names one of them (or names an
 * `unordered_*` type inline).
 *
 * Lookups (`find`, `count`, `operator[]`) are fine and not flagged.
 * When the iteration provably cannot reach sim-visible state, waive it
 * with `// lint: ordered-ok(<reason>)`.
 */

#include "lint.hh"

#include <cctype>
#include <set>

namespace nmaplint {
namespace {

constexpr const char *kUnorderedTypes[] = {
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
};

bool
isIdentChar(char c)
{
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
}

/** Offset just past a balanced `<...>` starting at @p open. */
std::size_t
matchAngle(std::string_view code, std::size_t open)
{
    if (open >= code.size() || code[open] != '<')
        return std::string_view::npos;
    int depth = 0;
    for (std::size_t i = open; i < code.size(); ++i) {
        if (code[i] == '<')
            ++depth;
        else if (code[i] == '>' && --depth == 0)
            return i + 1;
        else if (code[i] == ';')
            return std::string_view::npos; // statement ended: not a
                                           // template argument list
    }
    return std::string_view::npos;
}

/** Names of variables declared with an unordered container type. */
std::set<std::string>
collectUnorderedNames(const std::string &code)
{
    std::set<std::string> names;
    for (const char *type : kUnorderedTypes) {
        for (std::size_t pos = findToken(code, type);
             pos != std::string::npos;
             pos = findToken(code, type, pos + 1)) {
            std::size_t p = pos + std::string_view(type).size();
            while (p < code.size() && std::isspace(
                       static_cast<unsigned char>(code[p])))
                ++p;
            if (p >= code.size() || code[p] != '<')
                continue;
            p = matchAngle(code, p);
            if (p == std::string_view::npos)
                continue;
            // Skip declarator decorations and whitespace.
            while (p < code.size() &&
                   (std::isspace(static_cast<unsigned char>(code[p])) ||
                    code[p] == '&' || code[p] == '*'))
                ++p;
            std::size_t start = p;
            while (p < code.size() && isIdentChar(code[p]))
                ++p;
            if (p > start)
                names.insert(code.substr(start, p - start));
        }
    }
    return names;
}

class UnorderedIterRule : public LintRule
{
  public:
    bool
    appliesTo(const FileContext &file) const override
    {
        return file.under("src/");
    }

    void
    check(const FileContext &file, const std::string &id,
          Sink &sink) const override
    {
        const std::string &code = file.codeText();
        const std::set<std::string> unordered =
            collectUnorderedNames(code);

        for (std::size_t pos = findToken(code, "for");
             pos != std::string::npos;
             pos = findToken(code, "for", pos + 1)) {
            std::size_t open = pos + 3;
            while (open < code.size() && std::isspace(
                       static_cast<unsigned char>(code[open])))
                ++open;
            if (open >= code.size() || code[open] != '(')
                continue;
            const std::size_t end = matchParen(code, open);
            if (end == std::string::npos)
                continue;
            const std::string head =
                code.substr(open + 1, end - open - 2);

            // Range-for: a top-level ':' that is not part of '::'.
            std::size_t colon = std::string::npos;
            int depth = 0;
            for (std::size_t i = 0; i < head.size(); ++i) {
                const char c = head[i];
                if (c == '(' || c == '{' || c == '[')
                    ++depth;
                else if (c == ')' || c == '}' || c == ']')
                    --depth;
                else if (c == ':' && depth == 0 &&
                         (i + 1 >= head.size() || head[i + 1] != ':') &&
                         (i == 0 || head[i - 1] != ':')) {
                    colon = i;
                    break;
                }
            }
            if (colon == std::string::npos)
                continue;
            const std::string range = head.substr(colon + 1);

            bool flagged = false;
            for (const char *type : kUnorderedTypes)
                flagged = flagged || hasToken(range, type);
            std::string culprit;
            for (const std::string &name : unordered) {
                if (hasToken(range, name)) {
                    flagged = true;
                    culprit = name;
                }
            }
            if (flagged)
                sink.report(
                    file.lineOf(pos), id,
                    "range-for over unordered container" +
                        (culprit.empty() ? std::string()
                                         : " '" + culprit + "'") +
                        " can leak hash order into simulator state; "
                        "use an ordered container, sort first, or "
                        "waive with // lint: ordered-ok(<reason>)");
        }
    }
};

std::unique_ptr<LintRule>
makeUnorderedIterRule()
{
    return std::make_unique<UnorderedIterRule>();
}

REGISTER_LINT_RULE(
    "unordered-iter", &makeUnorderedIterRule, "ordered-ok",
    "flags range-for over unordered containers in src/");

} // namespace

void linkUnorderedIterRule() {}

} // namespace nmaplint
