/**
 * @file
 * Rule `register-hygiene`: every registry registration names itself
 * and documents itself.
 *
 * The self-registering registries (PolicyRegistry, DispatchRegistry,
 * nmaplint's own LintRuleRegistry) key everything on a string literal
 * and surface a help line in `--list-policies` / `--list-rules`. A
 * registration with an empty or non-literal name is unreachable from
 * configs; one without a doc string is invisible in the listings. The
 * rule checks every `REGISTER_*(...)` macro use and every direct
 * `<X>Registrar name(...)` declaration: the first argument must be a
 * nonempty string literal and the last argument a nonempty doc-string
 * literal.
 *
 * Scope: src/, tools/ and tests/. Waive intentionally anonymous
 * registrations with `// lint: register-ok(<reason>)`.
 */

#include "lint.hh"

#include <cctype>

namespace nmaplint {
namespace {

constexpr const char *kRegistrars[] = {
    "FreqPolicyRegistrar",
    "IdlePolicyRegistrar",
    "DispatchRegistrar",
    "DataplanePolicyRegistrar",
    "AdmissionPolicyRegistrar",
    "LintRuleRegistrar",
};

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Lines belonging to preprocessor directives (incl. continuations):
 *  the REGISTER_* macro definitions themselves live there. */
std::vector<bool>
preprocLines(const FileContext &file)
{
    const std::vector<std::string> &raw = file.raw();
    std::vector<bool> preproc(raw.size(), false);
    bool continued = false;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        std::size_t p = 0;
        while (p < raw[i].size() &&
               std::isspace(static_cast<unsigned char>(raw[i][p])))
            ++p;
        preproc[i] =
            continued || (p < raw[i].size() && raw[i][p] == '#');
        continued =
            preproc[i] && !raw[i].empty() && raw[i].back() == '\\';
    }
    return preproc;
}

/** Is @p arg (code view, literal contents blanked) a nonempty string
 *  literal? `"  "` yes, `""` no, `kName` no. */
bool
nonemptyStringLiteral(const std::string &arg)
{
    return arg.size() > 2 && arg.front() == '"' && arg.back() == '"';
}

class RegisterHygieneRule : public LintRule
{
  public:
    bool
    appliesTo(const FileContext &file) const override
    {
        return file.under("src/") || file.under("tools/") ||
               file.under("tests/");
    }

    void
    check(const FileContext &file, const std::string &id,
          Sink &sink) const override
    {
        const std::string &code = file.codeText();
        const std::vector<bool> preproc = preprocLines(file);

        auto checkArgsAt = [&](std::size_t open, int line,
                               const std::string &what) {
            const std::size_t end = matchParen(code, open);
            if (end == std::string::npos)
                return;
            const std::vector<std::string> args = splitTopLevelArgs(
                std::string_view(code).substr(open + 1,
                                              end - open - 2));
            if (args.size() < 2) {
                sink.report(line, id,
                            what + " needs at least a name literal "
                                   "and a doc string");
                return;
            }
            if (!nonemptyStringLiteral(args.front()))
                sink.report(line, id,
                            what + ": first argument must be a "
                                   "nonempty registry-name string "
                                   "literal");
            if (!nonemptyStringLiteral(args.back()))
                sink.report(line, id,
                            what + ": last argument must be a "
                                   "nonempty doc-string literal (it "
                                   "surfaces in the registry "
                                   "listings)");
        };

        // REGISTER_*(...) macro uses.
        for (std::size_t pos = code.find("REGISTER_");
             pos != std::string::npos;
             pos = code.find("REGISTER_", pos + 1)) {
            if (pos > 0 && isIdentChar(code[pos - 1]))
                continue;
            std::size_t p = pos;
            while (p < code.size() && isIdentChar(code[p]))
                ++p;
            const std::string name = code.substr(pos, p - pos);
            while (p < code.size() &&
                   std::isspace(static_cast<unsigned char>(code[p])))
                ++p;
            if (p >= code.size() || code[p] != '(')
                continue;
            const int line = file.lineOf(pos);
            if (preproc[static_cast<std::size_t>(line - 1)])
                continue; // the macro's own #define
            checkArgsAt(p, line, name);
        }

        // Direct `<X>Registrar variable(...)` declarations. The
        // constructor *declaration* inside the registrar struct has
        // '(' directly after the class name and is skipped by
        // requiring a declarator identifier in between.
        for (const char *registrar : kRegistrars) {
            for (std::size_t pos = findToken(code, registrar);
                 pos != std::string::npos;
                 pos = findToken(code, registrar, pos + 1)) {
                std::size_t p =
                    pos + std::string_view(registrar).size();
                while (p < code.size() &&
                       std::isspace(
                           static_cast<unsigned char>(code[p])))
                    ++p;
                std::size_t declStart = p;
                while (p < code.size() && isIdentChar(code[p]))
                    ++p;
                if (p == declStart)
                    continue; // no declarator: a ctor decl or cast
                while (p < code.size() &&
                       std::isspace(
                           static_cast<unsigned char>(code[p])))
                    ++p;
                if (p >= code.size() || code[p] != '(')
                    continue;
                const int line = file.lineOf(pos);
                if (preproc[static_cast<std::size_t>(line - 1)])
                    continue;
                checkArgsAt(p, line, std::string(registrar));
            }
        }
    }
};

std::unique_ptr<LintRule>
makeRegisterHygieneRule()
{
    return std::make_unique<RegisterHygieneRule>();
}

REGISTER_LINT_RULE(
    "register-hygiene", &makeRegisterHygieneRule, "register-ok",
    "REGISTER_* uses and registrar declarations need a nonempty name "
    "literal and doc string");

} // namespace

void linkRegisterHygieneRule() {}

} // namespace nmaplint
