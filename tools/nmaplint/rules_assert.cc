/**
 * @file
 * Rule `assert-in-model`: ban bare assert() in simulator code.
 *
 * assert() compiles away under NDEBUG, so a Release build silently
 * skips the very invariant checks that keep a corrupted simulation
 * from producing plausible-looking numbers. Model code must use
 * panic() (invariant violations) or fatal() (config/user errors) from
 * sim/logging.hh instead: both throw typed exceptions that survive
 * every build type and carry a message.
 *
 * Scope: src/. static_assert is fine (it is a different token and
 * fires at compile time). Waive genuinely debug-only checks with
 * `// lint: assert-ok(<reason>)`.
 */

#include "lint.hh"

namespace nmaplint {
namespace {

class AssertRule : public LintRule
{
  public:
    bool
    appliesTo(const FileContext &file) const override
    {
        return file.under("src/");
    }

    void
    check(const FileContext &file, const std::string &id,
          Sink &sink) const override
    {
        const std::vector<std::string> &code = file.code();
        for (std::size_t i = 0; i < code.size(); ++i) {
            if (findCall(code[i], "assert") != std::string::npos)
                sink.report(static_cast<int>(i + 1), id,
                            "assert() vanishes under NDEBUG; model "
                            "invariants must hold in Release too — "
                            "use panic() (invariants) or fatal() "
                            "(config errors) from sim/logging.hh");
        }
    }
};

std::unique_ptr<LintRule>
makeAssertRule()
{
    return std::make_unique<AssertRule>();
}

REGISTER_LINT_RULE(
    "assert-in-model", &makeAssertRule, "assert-ok",
    "bans bare assert() in src/ (use panic()/fatal(); NDEBUG-proof)");

} // namespace

void linkAssertRule() {}

} // namespace nmaplint
