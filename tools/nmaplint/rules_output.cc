/**
 * @file
 * Rule `raw-output`: simulator code must not write stdout directly.
 *
 * Bench stdouts are pinned byte-for-byte across refactors, and all
 * machine-readable results flow through ResultWriter. A stray
 * std::cout or printf in a governor or harness interleaves with (and
 * corrupts) that contract. Everything user-facing goes through the
 * logging helpers (sim/logging.hh: inform/warn/debugLog, which write
 * stderr) or the stats/result pipeline.
 *
 * Scope: src/ except src/stats/ (the table/CSV/JSON renderers are the
 * sanctioned formatting layer) and src/sim/logging.* (the sanctioned
 * sink). stderr writes (fprintf(stderr, ...), std::cerr) are allowed:
 * diagnostics never mix into captured results. Waive deliberate
 * stdout writers with `// lint: raw-output-ok(<reason>)`.
 */

#include "lint.hh"

namespace nmaplint {
namespace {

class RawOutputRule : public LintRule
{
  public:
    bool
    appliesTo(const FileContext &file) const override
    {
        return file.under("src/") && !file.under("src/stats/") &&
               !file.under("src/sim/logging");
    }

    void
    check(const FileContext &file, const std::string &id,
          Sink &sink) const override
    {
        const std::vector<std::string> &code = file.code();
        for (std::size_t i = 0; i < code.size(); ++i) {
            const std::string &line = code[i];
            const int lineNo = static_cast<int>(i + 1);
            if (hasToken(line, "cout"))
                sink.report(lineNo, id,
                            "std::cout in simulator code; route output "
                            "through ResultWriter or sim/logging.hh");
            for (const char *fn : {"printf", "puts", "putchar"}) {
                if (findCall(line, fn) != std::string::npos)
                    sink.report(lineNo, id,
                                std::string(fn) +
                                    "() writes stdout; route output "
                                    "through ResultWriter or "
                                    "sim/logging.hh");
            }
            const std::size_t fp = findCall(line, "fprintf");
            if (fp != std::string::npos) {
                const std::size_t open = line.find('(', fp);
                const std::size_t comma = line.find(',', open);
                const std::string firstArg =
                    comma == std::string::npos
                        ? line.substr(open + 1)
                        : line.substr(open + 1, comma - open - 1);
                if (hasToken(firstArg, "stdout"))
                    sink.report(lineNo, id,
                                "fprintf(stdout, ...) in simulator "
                                "code; route output through "
                                "ResultWriter or sim/logging.hh");
            }
        }
    }
};

std::unique_ptr<LintRule>
makeRawOutputRule()
{
    return std::make_unique<RawOutputRule>();
}

REGISTER_LINT_RULE(
    "raw-output", &makeRawOutputRule, "raw-output-ok",
    "bans std::cout/printf-to-stdout in src/ outside stats/ and "
    "sim/logging");

} // namespace

void linkRawOutputRule() {}

} // namespace nmaplint
