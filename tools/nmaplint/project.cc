/**
 * @file
 * ProjectContext: the whole-tree view behind the project-rule phase.
 *
 * Built by lintPaths() after the per-file pass: every loaded
 * FileContext is handed over, waiver consumption is recorded, and
 * finalize() derives the quoted-`#include` graph. Include paths are
 * extracted from the *raw* line at the code-view quote offsets — the
 * two views are byte-aligned, so the blanked literal contents can be
 * recovered exactly — and resolved the way the build does:
 * `src/<path>` first (the include root in CMakeLists.txt), then
 * relative to the including file, then relative to the repo root.
 * Unresolved edges keep their written text with a null target; the
 * layering rule still classifies them by first path segment.
 */

#include "lint.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace nmaplint {

namespace {

/** Directory part of a '/'-joined relative path, "" when none. */
std::string
dirOf(const std::string &relPath)
{
    const std::size_t slash = relPath.rfind('/');
    return slash == std::string::npos ? std::string()
                                      : relPath.substr(0, slash);
}

/** Collapse "a/b/../c" and "./" segments without touching the fs. */
std::string
normalizePath(const std::string &path)
{
    std::vector<std::string> parts;
    std::string::size_type start = 0;
    while (start <= path.size()) {
        std::string::size_type slash = path.find('/', start);
        if (slash == std::string::npos)
            slash = path.size();
        const std::string part = path.substr(start, slash - start);
        if (part == "..") {
            if (!parts.empty())
                parts.pop_back();
        } else if (!part.empty() && part != ".") {
            parts.push_back(part);
        }
        start = slash + 1;
    }
    std::string out;
    for (const std::string &part : parts) {
        if (!out.empty())
            out += '/';
        out += part;
    }
    return out;
}

} // namespace

ProjectContext::ProjectContext(std::string root)
    : root_(std::move(root))
{
}

void
ProjectContext::addFile(std::unique_ptr<FileContext> file)
{
    owned_.push_back(std::move(file));
}

void
ProjectContext::markWaiverUsed(const std::string &file, int line)
{
    usedWaivers_.emplace(file, line);
}

void
ProjectContext::finalize()
{
    sorted_.clear();
    byPath_.clear();
    includes_.clear();
    sorted_.reserve(owned_.size());
    for (const auto &file : owned_) {
        sorted_.push_back(file.get());
        byPath_.emplace(file->path(), file.get());
    }
    std::sort(sorted_.begin(), sorted_.end(),
              [](const FileContext *a, const FileContext *b) {
                  return a->path() < b->path();
              });

    for (const FileContext *file : sorted_) {
        std::vector<IncludeEdge> &edges = includes_[file];
        const std::vector<std::string> &code = file->code();
        for (std::size_t i = 0; i < code.size(); ++i) {
            const std::string &line = code[i];
            std::size_t hash = line.find_first_not_of(" \t");
            if (hash == std::string::npos || line[hash] != '#')
                continue;
            std::size_t kw = line.find_first_not_of(" \t", hash + 1);
            if (kw == std::string::npos ||
                line.compare(kw, 7, "include") != 0)
                continue;
            // Quoted includes only: <system> headers are outside the
            // project graph by construction.
            const std::size_t open = line.find('"', kw + 7);
            if (open == std::string::npos)
                continue;
            const std::size_t close = line.find('"', open + 1);
            if (close == std::string::npos)
                continue;
            IncludeEdge edge;
            edge.line = static_cast<int>(i + 1);
            // Raw and code lines are byte-aligned; the path text is
            // blanked in the code view but intact in the raw view.
            edge.text = file->raw()[i].substr(open + 1, close - open - 1);

            const std::string fromSrc = "src/" + edge.text;
            const std::string fromDir = normalizePath(
                dirOf(file->path()) + "/" + edge.text);
            for (const std::string &candidate :
                 {fromSrc, fromDir, normalizePath(edge.text)}) {
                auto it = byPath_.find(candidate);
                if (it != byPath_.end()) {
                    edge.target = it->second;
                    break;
                }
            }
            edges.push_back(edge);
        }
    }
}

const FileContext *
ProjectContext::file(const std::string &relPath) const
{
    auto it = byPath_.find(relPath);
    return it == byPath_.end() ? nullptr : it->second;
}

const std::vector<IncludeEdge> &
ProjectContext::includesOf(const FileContext &file) const
{
    static const std::vector<IncludeEdge> kEmpty;
    auto it = includes_.find(&file);
    return it == includes_.end() ? kEmpty : it->second;
}

bool
ProjectContext::waiverUsed(const std::string &file, int line) const
{
    return usedWaivers_.count({file, line}) > 0;
}

bool
ProjectContext::readDoc(const std::string &relPath,
                        std::string &out) const
{
    auto it = docs_.find(relPath);
    if (it == docs_.end()) {
        std::pair<bool, std::string> entry{false, std::string()};
        std::string full = root_;
        if (!full.empty() && full.back() != '/')
            full += '/';
        full += relPath;
        std::ifstream in(full, std::ios::binary);
        if (in) {
            std::ostringstream ss;
            ss << in.rdbuf();
            entry.first = true;
            entry.second = ss.str();
        }
        it = docs_.emplace(relPath, std::move(entry)).first;
    }
    out = it->second.second;
    return it->second.first;
}

} // namespace nmaplint
