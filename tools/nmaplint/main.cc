/**
 * @file
 * nmaplint CLI.
 *
 *     nmaplint [--root DIR] [options] [PATH...]
 *     nmaplint --list-rules                rules, waiver tokens, help
 *     nmaplint --waive RULE REASON...     print the waiver comment
 *
 * Options:
 *     --format text|json|sarif  output format (default text)
 *     --jobs N                  per-file phase worker threads; output
 *                               is byte-identical for any N
 *     --changed                 lint only git-modified files (fast
 *                               pre-commit loop; per-file phase only)
 *     --project                 force the project phase for explicit
 *                               PATH arguments
 *
 * With no PATH arguments the default source set under --root (src/,
 * bench/, tools/, tests/, examples/) is scanned — both phases:
 * per-file rules, then the project rules over the include graph —
 * excluding build trees and tests/lint_fixtures (whose files violate
 * rules on purpose). Explicit PATHs and --changed lint just those
 * files with per-file rules, since project properties are only
 * meaningful over the whole tree; --project opts a path scan back in
 * (the fixture tests use this on miniature trees). Findings print as
 * `file:line: rule-id: message` sorted by (file, line, rule); exit
 * code 1 when any finding survives waivers, 2 on usage errors, 0
 * when clean.
 */

#include "lint.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

constexpr const char *kDefaultDirs[] = {
    "src", "bench", "tools", "tests", "examples",
};

constexpr const char *kExtensions[] = {
    ".cc", ".hh", ".cpp", ".hpp", ".h",
};

bool
lintableFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return std::find(std::begin(kExtensions), std::end(kExtensions),
                     ext) != std::end(kExtensions);
}

bool
excludedDir(const fs::path &p)
{
    const std::string name = p.filename().string();
    return name == ".git" || name == "lint_fixtures" ||
           name.compare(0, 5, "build") == 0;
}

void
collectDir(const fs::path &dir, std::vector<std::string> &out)
{
    if (!fs::exists(dir))
        return;
    for (fs::recursive_directory_iterator
             it(dir, fs::directory_options::skip_permission_denied),
         end;
         it != end; ++it) {
        if (it->is_directory() && excludedDir(it->path())) {
            it.disable_recursion_pending();
            continue;
        }
        if (it->is_regular_file() && lintableFile(it->path()))
            out.push_back(it->path().lexically_normal().string());
    }
}

/**
 * Lintable files touched per `git status --porcelain` under @p root:
 * staged, unstaged and untracked, renames resolved to their new
 * path. Deleted and non-lintable paths are dropped, as is anything
 * under the fixture/build exclusions.
 */
std::vector<std::string>
changedFiles(const std::string &root)
{
    std::vector<std::string> out;
    const std::string cmd =
        "git -C '" + root + "' status --porcelain 2>/dev/null";
    FILE *pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return out;
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = fread(buf, 1, sizeof buf, pipe)) > 0)
        text.append(buf, n);
    pclose(pipe);

    std::string::size_type start = 0;
    while (start < text.size()) {
        std::string::size_type nl = text.find('\n', start);
        if (nl == std::string::npos)
            nl = text.size();
        std::string line = text.substr(start, nl - start);
        start = nl + 1;
        // Porcelain v1: two status chars, a space, then the path;
        // renames read `R  old -> new`.
        if (line.size() < 4)
            continue;
        std::string path = line.substr(3);
        const std::string::size_type arrow = path.find(" -> ");
        if (arrow != std::string::npos)
            path = path.substr(arrow + 4);
        if (path.size() >= 2 && path.front() == '"' &&
            path.back() == '"')
            path = path.substr(1, path.size() - 2);
        const fs::path full = fs::path(root) / path;
        if (!lintableFile(full) || !fs::is_regular_file(full))
            continue;
        bool excluded = false;
        for (const fs::path &part : fs::path(path)) {
            if (excludedDir(part)) {
                excluded = true;
                break;
            }
        }
        if (!excluded)
            out.push_back(full.lexically_normal().string());
    }
    return out;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--format text|json|sarif] [--jobs N]\n"
        "       %*s [--changed] [--project] [PATH...]\n"
        "       %s --list-rules\n"
        "       %s --waive RULE REASON...\n"
        "\n"
        "Lints nmapsim sources for determinism and model-integrity\n"
        "hazards: per-file rules first, then project rules (layering\n"
        "DAG, shared mutable state, config/doc sync, stale waivers)\n"
        "over the whole tree. With no PATH, scans src/ bench/ tools/\n"
        "tests/ examples/ under --root (default: cwd) with both\n"
        "phases; explicit PATHs and --changed run the per-file phase\n"
        "only unless --project is given. Exit code: 0 clean,\n"
        "1 findings, 2 usage error.\n",
        argv0, static_cast<int>(std::string(argv0).size()), "", argv0,
        argv0);
    return 2;
}

int
listRules()
{
    nmaplint::ensureBuiltinRules();
    for (const auto &rule :
         nmaplint::LintRuleRegistry::instance().rules()) {
        std::printf("%-20s %s waive: // lint: %s(<reason>)\n    %s\n",
                    rule.id.c_str(),
                    rule.project ? "[project]" : "[file]   ",
                    rule.waiverToken.c_str(), rule.help.c_str());
    }
    return 0;
}

int
printWaiver(const std::string &rule, const std::string &reason)
{
    nmaplint::ensureBuiltinRules();
    if (reason.empty()) {
        std::fprintf(stderr,
                     "nmaplint: --waive needs a reason: every waiver "
                     "must say why the rule does not apply\n");
        return 2;
    }
    const std::string comment =
        nmaplint::waiverComment(rule, reason);
    if (comment.empty()) {
        std::fprintf(stderr,
                     "nmaplint: unknown rule or waiver token '%s' "
                     "(see --list-rules)\n",
                     rule.c_str());
        return 2;
    }
    std::printf("%s\n", comment.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = fs::current_path().string();
    std::string format = "text";
    std::vector<std::string> paths;
    int jobs = 1;
    bool changed = false;
    bool forceProject = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--list-rules") {
            return listRules();
        } else if (arg == "--waive") {
            if (i + 1 >= argc)
                return usage(argv[0]);
            std::string reason;
            for (int j = i + 2; j < argc; ++j) {
                if (!reason.empty())
                    reason += ' ';
                reason += argv[j];
            }
            return printWaiver(argv[i + 1], reason);
        } else if (arg == "--root") {
            if (++i >= argc)
                return usage(argv[0]);
            root = argv[i];
        } else if (arg == "--format") {
            if (++i >= argc)
                return usage(argv[0]);
            format = argv[i];
            if (format != "text" && format != "json" &&
                format != "sarif") {
                std::fprintf(stderr,
                             "nmaplint: unknown format '%s'\n",
                             format.c_str());
                return 2;
            }
        } else if (arg == "--jobs") {
            if (++i >= argc)
                return usage(argv[0]);
            jobs = std::atoi(argv[i]);
            if (jobs < 1) {
                std::fprintf(stderr,
                             "nmaplint: --jobs wants a positive "
                             "thread count, got '%s'\n",
                             argv[i]);
                return 2;
            }
        } else if (arg == "--changed") {
            changed = true;
        } else if (arg == "--project") {
            forceProject = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "nmaplint: unknown option '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }

    root = fs::path(root).lexically_normal().string();

    std::vector<std::string> files;
    nmaplint::LintOptions options;
    options.jobs = jobs;
    if (changed) {
        files = changedFiles(root);
        options.project = forceProject;
    } else if (paths.empty()) {
        for (const char *dir : kDefaultDirs)
            collectDir(fs::path(root) / dir, files);
        // The whole tree is in view: project properties (include
        // graph, config/doc sync, waiver liveness) are meaningful,
        // so the full scan always runs both phases.
        options.project = true;
    } else {
        for (const std::string &p : paths) {
            if (fs::is_directory(p))
                collectDir(p, files);
            else
                files.push_back(p);
        }
        options.project = forceProject;
    }
    // Deterministic scan order regardless of directory enumeration.
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    const std::vector<nmaplint::Finding> findings =
        nmaplint::lintPaths(files, root, options);

    std::string rendered;
    if (format == "json")
        rendered = nmaplint::renderJson(findings);
    else if (format == "sarif")
        rendered = nmaplint::renderSarif(findings);
    else
        rendered = nmaplint::renderText(findings);
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);

    if (findings.empty()) {
        std::fprintf(stderr, "nmaplint: %zu files clean\n",
                     files.size());
        return 0;
    }
    std::fprintf(stderr, "nmaplint: %zu finding%s in %zu files\n",
                 findings.size(), findings.size() == 1 ? "" : "s",
                 files.size());
    return 1;
}
