/**
 * @file
 * nmaplint CLI.
 *
 *     nmaplint [--root DIR] [PATH...]      lint files / directories
 *     nmaplint --list-rules                rules, waiver tokens, help
 *     nmaplint --waive RULE REASON...      print the waiver comment
 *
 * With no PATH arguments the default source set under --root (src/,
 * bench/, tools/, tests/, examples/) is scanned, excluding build
 * trees and tests/lint_fixtures (whose files violate rules on
 * purpose). Findings print as `file:line: rule-id: message` —
 * GitHub-annotation friendly — sorted by (file, line, rule), and the
 * exit code is 1 when any finding survives waivers, 2 on usage
 * errors, 0 when clean.
 */

#include "lint.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

constexpr const char *kDefaultDirs[] = {
    "src", "bench", "tools", "tests", "examples",
};

constexpr const char *kExtensions[] = {
    ".cc", ".hh", ".cpp", ".hpp", ".h",
};

bool
lintableFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return std::find(std::begin(kExtensions), std::end(kExtensions),
                     ext) != std::end(kExtensions);
}

bool
excludedDir(const fs::path &p)
{
    const std::string name = p.filename().string();
    return name == ".git" || name == "lint_fixtures" ||
           name.compare(0, 5, "build") == 0;
}

void
collectDir(const fs::path &dir, std::vector<std::string> &out)
{
    if (!fs::exists(dir))
        return;
    for (fs::recursive_directory_iterator
             it(dir, fs::directory_options::skip_permission_denied),
         end;
         it != end; ++it) {
        if (it->is_directory() && excludedDir(it->path())) {
            it.disable_recursion_pending();
            continue;
        }
        if (it->is_regular_file() && lintableFile(it->path()))
            out.push_back(it->path().lexically_normal().string());
    }
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [PATH...]\n"
        "       %s --list-rules\n"
        "       %s --waive RULE REASON...\n"
        "\n"
        "Lints nmapsim sources for determinism and model-integrity\n"
        "hazards. With no PATH, scans src/ bench/ tools/ tests/\n"
        "examples/ under --root (default: cwd). Exit code: 0 clean,\n"
        "1 findings, 2 usage error.\n",
        argv0, argv0, argv0);
    return 2;
}

int
listRules()
{
    nmaplint::ensureBuiltinRules();
    for (const auto &rule :
         nmaplint::LintRuleRegistry::instance().rules()) {
        std::printf("%-18s waive: // lint: %s(<reason>)\n    %s\n",
                    rule.id.c_str(), rule.waiverToken.c_str(),
                    rule.help.c_str());
    }
    return 0;
}

int
printWaiver(const std::string &rule, const std::string &reason)
{
    nmaplint::ensureBuiltinRules();
    if (reason.empty()) {
        std::fprintf(stderr,
                     "nmaplint: --waive needs a reason: every waiver "
                     "must say why the rule does not apply\n");
        return 2;
    }
    const std::string comment =
        nmaplint::waiverComment(rule, reason);
    if (comment.empty()) {
        std::fprintf(stderr,
                     "nmaplint: unknown rule or waiver token '%s' "
                     "(see --list-rules)\n",
                     rule.c_str());
        return 2;
    }
    std::printf("%s\n", comment.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = fs::current_path().string();
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (arg == "--list-rules") {
            return listRules();
        } else if (arg == "--waive") {
            if (i + 1 >= argc)
                return usage(argv[0]);
            std::string reason;
            for (int j = i + 2; j < argc; ++j) {
                if (!reason.empty())
                    reason += ' ';
                reason += argv[j];
            }
            return printWaiver(argv[i + 1], reason);
        } else if (arg == "--root") {
            if (++i >= argc)
                return usage(argv[0]);
            root = argv[i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "nmaplint: unknown option '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }

    root = fs::path(root).lexically_normal().string();

    std::vector<std::string> files;
    if (paths.empty()) {
        for (const char *dir : kDefaultDirs)
            collectDir(fs::path(root) / dir, files);
    } else {
        for (const std::string &p : paths) {
            if (fs::is_directory(p))
                collectDir(p, files);
            else
                files.push_back(p);
        }
    }
    // Deterministic scan order regardless of directory enumeration.
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    const std::vector<nmaplint::Finding> findings =
        nmaplint::lintPaths(files, root);
    for (const nmaplint::Finding &f : findings)
        std::printf("%s:%d: %s: %s\n", f.file.c_str(), f.line,
                    f.rule.c_str(), f.message.c_str());

    if (findings.empty()) {
        std::fprintf(stderr, "nmaplint: %zu files clean\n",
                     files.size());
        return 0;
    }
    std::fprintf(stderr, "nmaplint: %zu finding%s in %zu files\n",
                 findings.size(), findings.size() == 1 ? "" : "s",
                 files.size());
    return 1;
}
