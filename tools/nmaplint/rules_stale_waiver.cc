/**
 * @file
 * Project rule `stale-waiver`: a waiver that suppresses nothing is
 * itself a finding.
 *
 * Waivers are cheap on purpose — any rule can be silenced with one
 * reasoned comment — so the counterweight is that every waiver must
 * keep earning its place. The driver records which waiver comments
 * actually suppressed a finding (per-file phase first, then every
 * project rule; this rule is always ordered last so it observes the
 * complete consumption record). A well-formed waiver with a known
 * token that consumed nothing has outlived the violation it excused
 * and must be deleted, not left to mask a future regression.
 *
 * Malformed or unknown-token waivers are `bad-waiver` findings in the
 * per-file phase and are skipped here; `stale-ok` waivers are exempt
 * (auditing the auditor would never reach a fixpoint).
 */

#include "lint.hh"

#include <memory>
#include <string>

namespace nmaplint {
namespace {

class StaleWaiverRule : public ProjectRule
{
  public:
    void
    check(const ProjectContext &project, const std::string &id,
          ProjectSink &sink) const override
    {
        const LintRuleRegistry &registry =
            LintRuleRegistry::instance();
        for (const FileContext *file : project.files()) {
            for (const WaiverInfo &w : waiversIn(*file)) {
                if (!w.wellFormed || w.reason.empty())
                    continue; // bad-waiver's department
                if (w.token == "stale-ok")
                    continue;
                const std::string rule =
                    registry.ruleForToken(w.token);
                if (rule.empty())
                    continue; // bad-waiver's department
                if (project.waiverUsed(file->path(), w.line))
                    continue;
                sink.report(file->path(), w.line, id,
                            "waiver '" + w.token + "' (rule '" +
                                rule +
                                "') no longer suppresses anything; "
                                "delete it");
            }
        }
    }
};

std::unique_ptr<ProjectRule>
makeStaleWaiverRule()
{
    return std::make_unique<StaleWaiverRule>();
}

REGISTER_PROJECT_RULE(
    "stale-waiver", &makeStaleWaiverRule, "stale-ok",
    "a reasoned waiver whose rule no longer fires on that line must "
    "be deleted so it cannot mask a future regression");

} // namespace

// Anchor for ensureBuiltinRules().
void linkStaleWaiverRule() {}

} // namespace nmaplint
