/**
 * @file
 * Rule `header-hygiene`: src/ headers carry an include guard and live
 * in namespace nmapsim.
 *
 * A guard-less header breaks under the umbrella includes the benches
 * use; a header outside `namespace nmapsim` leaks simulator names into
 * the global namespace where they collide with libc symbols the other
 * rules ban (`time`, `rand`). Accepts either a classic
 * `#ifndef/#define` pair or `#pragma once`.
 *
 * Scope: src/ headers (.h/.hh/.hpp). Waive deliberate exceptions
 * (e.g. a macro-only x-macros header) with
 * `// lint: header-ok(<reason>)` on line 1.
 */

#include "lint.hh"

namespace nmaplint {
namespace {

class HeaderHygieneRule : public LintRule
{
  public:
    bool
    appliesTo(const FileContext &file) const override
    {
        return file.under("src/") && file.isHeader();
    }

    void
    check(const FileContext &file, const std::string &id,
          Sink &sink) const override
    {
        const std::string &code = file.codeText();

        bool pragmaOnce = false;
        bool sawIfndef = false;
        bool guarded = false;
        for (const std::string &line : file.code()) {
            const std::size_t hash = line.find('#');
            if (hash == std::string::npos)
                continue;
            const std::string directive = line.substr(hash);
            if (directive.find("pragma") != std::string::npos &&
                directive.find("once") != std::string::npos)
                pragmaOnce = true;
            if (directive.find("ifndef") != std::string::npos)
                sawIfndef = true;
            else if (sawIfndef &&
                     directive.find("define") != std::string::npos)
                guarded = true;
        }
        if (!pragmaOnce && !guarded)
            sink.report(1, id,
                        "header has no include guard; add "
                        "#ifndef/#define or #pragma once");

        std::size_t ns = findToken(code, "namespace");
        bool inNmapsim = false;
        while (ns != std::string::npos) {
            std::size_t p = ns + 9;
            while (p < code.size() &&
                   (code[p] == ' ' || code[p] == '\t' ||
                    code[p] == '\n'))
                ++p;
            if (tokenAt(code, p, "nmapsim")) {
                inNmapsim = true;
                break;
            }
            ns = findToken(code, "namespace", ns + 1);
        }
        if (!inNmapsim)
            sink.report(1, id,
                        "src/ header does not declare namespace "
                        "nmapsim; simulator names must not leak into "
                        "the global namespace");
    }
};

std::unique_ptr<LintRule>
makeHeaderHygieneRule()
{
    return std::make_unique<HeaderHygieneRule>();
}

REGISTER_LINT_RULE(
    "header-hygiene", &makeHeaderHygieneRule, "header-ok",
    "src/ headers need an include guard and namespace nmapsim");

} // namespace

void linkHeaderHygieneRule() {}

} // namespace nmaplint
