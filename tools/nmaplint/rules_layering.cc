/**
 * @file
 * Project rule `layering`: the module DAG over src/ first-path
 * segments, machine-checked.
 *
 * The simulator is layered so that the deterministic core never
 * depends on the experiment plumbing above it: `sim` (events, time,
 * RNG, logging) sits at the bottom; `params` (the PolicyParams bag,
 * physically src/harness/policy_params.hh) just above; the device and
 * kernel models (`net`, `cpu`, `os`, `stats`) in the middle; policy
 * families (`governors`, `nmap`, `baselines`, `dataplane`, `fault`,
 * `workload`) above those; `cluster` near the top; and `harness`
 * (experiment driver, config I/O, sweeps) on top of everything. An
 * include that reaches *up* this DAG — or any include cycle among
 * src/ files — is a finding. DESIGN.md ("Module layering") is the
 * prose version of the table below; keep the two in sync.
 *
 * Exemption: a `.cc` file may include `harness/policy_registry.hh`
 * and `harness/experiment.hh` regardless of its module — that is the
 * registration-hub inversion the self-registering policy families are
 * built on (the *type* dependency still flows downward; only the
 * registrar call reaches up).
 */

#include "lint.hh"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace nmaplint {
namespace {

/** Modules each module may include (besides itself). Keep in sync
 *  with DESIGN.md "Module layering". */
const std::map<std::string, std::set<std::string>> &
allowedDeps()
{
    static const std::map<std::string, std::set<std::string>> kDeps = {
        {"sim", {}},
        {"params", {"sim"}},
        {"stats", {"sim"}},
        {"net", {"sim"}},
        {"cpu", {"sim", "stats"}},
        {"os", {"sim", "net", "cpu"}},
        {"workload",
         {"sim", "net", "os", "stats", "resilience", "params"}},
        {"governors", {"sim", "cpu", "os", "params"}},
        {"nmap", {"sim", "cpu", "os", "governors", "params"}},
        {"baselines",
         {"sim", "net", "cpu", "os", "workload", "governors",
          "params"}},
        {"fault", {"sim", "net", "params"}},
        {"resilience", {"sim", "net", "params"}},
        {"dataplane", {"sim", "net", "os", "stats", "params"}},
        {"cluster",
         {"sim", "net", "cpu", "os", "stats", "workload", "governors",
          "dataplane", "fault", "resilience", "params"}},
        {"harness",
         {"sim", "net", "cpu", "os", "stats", "workload", "governors",
          "nmap", "baselines", "fault", "dataplane", "cluster",
          "resilience", "params"}},
    };
    return kDeps;
}

/**
 * Module of a src-relative path or include text; "" when outside the
 * layered tree (no directory, or not a declared module). The
 * PolicyParams header is carved out of `harness` into the virtual
 * `params` module: it is the one harness file the policy families
 * below harness are allowed to see.
 */
std::string
moduleOf(std::string path)
{
    if (path.compare(0, 4, "src/") == 0)
        path = path.substr(4);
    if (path == "harness/policy_params.hh")
        return "params";
    const std::size_t slash = path.find('/');
    if (slash == std::string::npos)
        return std::string();
    return path.substr(0, slash);
}

/** The registration-hub carve-out (see file comment). */
bool
registrationHubInclude(const FileContext &file, const std::string &inc)
{
    return !file.isHeader() && (inc == "harness/policy_registry.hh" ||
                                inc == "harness/experiment.hh");
}

class LayeringRule : public ProjectRule
{
  public:
    void
    check(const ProjectContext &project, const std::string &id,
          ProjectSink &sink) const override
    {
        const auto &deps = allowedDeps();

        // Downward-edge check: every quoted include of a src/ file
        // must stay within its module or reach a lower layer.
        for (const FileContext *file : project.files()) {
            if (!file->under("src/"))
                continue;
            const std::string from = moduleOf(file->path());
            if (from.empty() || deps.find(from) == deps.end())
                continue;
            const std::set<std::string> &allowed = deps.at(from);
            for (const IncludeEdge &edge :
                 project.includesOf(*file)) {
                if (registrationHubInclude(*file, edge.text))
                    continue;
                const std::string to = moduleOf(edge.text);
                if (to.empty() || to == from ||
                    deps.find(to) == deps.end())
                    continue;
                if (allowed.count(to) > 0)
                    continue;
                sink.report(
                    file->path(), edge.line, id,
                    "module '" + from + "' may not include '" +
                        edge.text + "' (module '" + to +
                        "' is not below it in the layering DAG; see "
                        "DESIGN.md \"Module layering\")");
            }
        }

        reportCycles(project, id, sink);
    }

  private:
    /**
     * Include cycles among loaded src/ files (resolved edges only),
     * via iterative Tarjan SCC over the path-sorted file list — the
     * component set and the reported anchor are deterministic. One
     * finding per cycle, anchored at the sorted-first member's edge
     * into the component.
     */
    void
    reportCycles(const ProjectContext &project, const std::string &id,
                 ProjectSink &sink) const
    {
        std::vector<const FileContext *> nodes;
        for (const FileContext *file : project.files()) {
            if (file->under("src/"))
                nodes.push_back(file);
        }
        std::map<const FileContext *, int> index;
        for (std::size_t i = 0; i < nodes.size(); ++i)
            index[nodes[i]] = static_cast<int>(i);

        auto neighbors = [&](int u) {
            std::vector<int> out;
            for (const IncludeEdge &edge :
                 project.includesOf(*nodes[static_cast<size_t>(u)])) {
                if (edge.target == nullptr)
                    continue;
                auto it = index.find(edge.target);
                if (it != index.end())
                    out.push_back(it->second);
            }
            return out;
        };

        const int n = static_cast<int>(nodes.size());
        std::vector<int> low(static_cast<size_t>(n), -1);
        std::vector<int> disc(static_cast<size_t>(n), -1);
        std::vector<bool> onStack(static_cast<size_t>(n), false);
        std::vector<int> stack;
        std::vector<std::vector<int>> components;
        int timer = 0;

        // Iterative Tarjan: frame = (node, next-neighbor cursor).
        for (int start = 0; start < n; ++start) {
            if (disc[static_cast<size_t>(start)] != -1)
                continue;
            std::vector<std::pair<int, std::size_t>> frames{{start, 0}};
            while (!frames.empty()) {
                auto &[u, cursor] = frames.back();
                const auto su = static_cast<size_t>(u);
                if (cursor == 0) {
                    disc[su] = low[su] = timer++;
                    stack.push_back(u);
                    onStack[su] = true;
                }
                const std::vector<int> adj = neighbors(u);
                if (cursor < adj.size()) {
                    const int v = adj[cursor++];
                    const auto sv = static_cast<size_t>(v);
                    if (disc[sv] == -1) {
                        frames.emplace_back(v, 0);
                    } else if (onStack[sv]) {
                        low[su] = std::min(low[su], disc[sv]);
                    }
                    continue;
                }
                if (low[su] == disc[su]) {
                    std::vector<int> comp;
                    while (true) {
                        const int w = stack.back();
                        stack.pop_back();
                        onStack[static_cast<size_t>(w)] = false;
                        comp.push_back(w);
                        if (w == u)
                            break;
                    }
                    if (comp.size() > 1)
                        components.push_back(std::move(comp));
                }
                frames.pop_back();
                if (!frames.empty()) {
                    const auto pu =
                        static_cast<size_t>(frames.back().first);
                    low[pu] = std::min(low[pu], low[su]);
                }
            }
        }

        for (std::vector<int> &comp : components) {
            std::vector<std::string> paths;
            std::set<const FileContext *> members;
            for (int u : comp) {
                paths.push_back(nodes[static_cast<size_t>(u)]->path());
                members.insert(nodes[static_cast<size_t>(u)]);
            }
            std::sort(paths.begin(), paths.end());
            const FileContext *anchor = project.file(paths.front());
            int line = 1;
            for (const IncludeEdge &edge :
                 project.includesOf(*anchor)) {
                if (edge.target != nullptr &&
                    members.count(edge.target) > 0) {
                    line = edge.line;
                    break;
                }
            }
            std::string joined;
            for (const std::string &p : paths) {
                if (!joined.empty())
                    joined += ", ";
                joined += p;
            }
            sink.report(anchor->path(), line, id,
                        "include cycle among: " + joined);
        }
    }
};

std::unique_ptr<ProjectRule>
makeLayeringRule()
{
    return std::make_unique<LayeringRule>();
}

REGISTER_PROJECT_RULE(
    "layering", &makeLayeringRule, "layering-ok",
    "include edges between src/ modules must follow the layering DAG "
    "declared in DESIGN.md, and src/ include cycles are banned");

} // namespace

// Anchor for ensureBuiltinRules(): forces this TU's registrar out of
// the static archive.
void linkLayeringRule() {}

} // namespace nmaplint
