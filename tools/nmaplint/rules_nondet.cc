/**
 * @file
 * Rule `nondet-source`: ban nondeterminism sources in simulator code.
 *
 * Everything sim-visible must derive from the seeded Rng (sim/rng.hh)
 * and the simulated clock (sim/time.hh). Wall-clock reads, the C
 * random API and environment reads make runs diverge between hosts and
 * invocations, silently breaking the bit-reproducibility contract that
 * the pinned bench stdouts and determinism_test rely on.
 *
 * Scope: src/ and bench/. getenv is additionally allowed in
 * src/harness/ and bench/ (runner knobs like NMAPSIM_JOBS deliberately
 * come from the environment; they must never steer simulated state).
 * Waive sim-invisible uses (progress timers, log timestamps) with
 * `// lint: nondet-ok(<reason>)`.
 */

#include "lint.hh"

namespace nmaplint {
namespace {

/** A banned construct and how to report it. */
struct Ban
{
    const char *token;
    bool callOnly; //!< match only `token (`-style direct calls
    const char *message;
};

constexpr Ban kBans[] = {
    {"random_device", false,
     "std::random_device is nondeterministic; seed a sim/rng.hh Rng "
     "from the experiment config instead"},
    {"rand", true,
     "rand() draws from hidden global state; use sim/rng.hh (Rng)"},
    {"srand", true,
     "srand() reseeds hidden global state; use sim/rng.hh (Rng)"},
    {"time", true,
     "time() reads the wall clock; simulated time comes from "
     "sim/time.hh (Tick)"},
    {"clock_gettime", true,
     "clock_gettime() reads the wall clock; use simulated Ticks"},
    {"gettimeofday", true,
     "gettimeofday() reads the wall clock; use simulated Ticks"},
    {"system_clock", false,
     "std::chrono::system_clock reads the wall clock; simulated time "
     "comes from sim/time.hh (Tick)"},
    {"steady_clock", false,
     "std::chrono::steady_clock reads host time; simulated time comes "
     "from sim/time.hh (Tick)"},
    {"high_resolution_clock", false,
     "std::chrono::high_resolution_clock reads host time; simulated "
     "time comes from sim/time.hh (Tick)"},
};

class NondetRule : public LintRule
{
  public:
    bool
    appliesTo(const FileContext &file) const override
    {
        return file.under("src/") || file.under("bench/");
    }

    void
    check(const FileContext &file, const std::string &id,
          Sink &sink) const override
    {
        const bool envOk =
            file.under("src/harness/") || file.under("bench/");
        const std::vector<std::string> &code = file.code();
        for (std::size_t i = 0; i < code.size(); ++i) {
            const std::string &line = code[i];
            for (const Ban &ban : kBans) {
                const std::size_t pos =
                    ban.callOnly ? findCall(line, ban.token)
                                 : findToken(line, ban.token);
                if (pos != std::string::npos)
                    sink.report(static_cast<int>(i + 1), id,
                                ban.message);
            }
            if (!envOk && findCall(line, "getenv") != std::string::npos)
                sink.report(static_cast<int>(i + 1), id,
                            "getenv() outside src/harness/ and bench/ "
                            "lets the environment steer simulated "
                            "state; plumb knobs through the config");
        }
    }
};

std::unique_ptr<LintRule>
makeNondetRule()
{
    return std::make_unique<NondetRule>();
}

REGISTER_LINT_RULE(
    "nondet-source", &makeNondetRule, "nondet-ok",
    "bans wall-clock, C-random and environment reads in src/ + bench/");

} // namespace

void linkNondetRule() {}

} // namespace nmaplint
