/**
 * @file
 * Project rule `config-doc-sync`: the config-key surface and the
 * README key-reference tables must agree, both directions.
 *
 * Code-side keys are harvested from three places:
 *
 *   1. the `key == "..."` dispatch chains in
 *      src/harness/config_io.cc and src/harness/cluster_io.cc (plus
 *      cluster_io's `rest == "..."` per-host suffixes, documented as
 *      `host<i>.<suffix>`),
 *   2. PolicyParams getter calls anywhere under src/ —
 *      getDouble/getInt/getBool/getTick/has/raw — whose first
 *      argument is a dotted string literal, and
 *   3. template-form literals like "topology.tier<i>.name" anywhere
 *      under src/ (key-grammar characters only, containing `<i>`),
 *      which is how families of numbered keys name themselves.
 *
 * Doc-side keys are the backticked tokens in the first column of
 * every README.md table whose header row starts with `| Key |`.
 * A key parsed but undocumented is a finding at the parse site
 * (waivable, `config-doc-ok`); a key documented but never parsed is
 * a finding at the README row (not waivable — fix the doc).
 *
 * Literal contents are blanked in the code view, so every harvest
 * recovers the actual text from the raw view at the same byte
 * offsets (the two views are length-preserving by construction).
 */

#include "lint.hh"

#include <cctype>
#include <map>
#include <string>
#include <vector>

namespace nmaplint {
namespace {

bool
isSpace(char c)
{
    return std::isspace(static_cast<unsigned char>(c)) != 0;
}

/** Key grammar: identifier chars, dots and the `<i>` placeholder;
 *  a key never starts or ends with a dot (that rejects bare prefix
 *  constants like "topology.tier<i>."). */
bool
keyGrammar(const std::string &s)
{
    if (s.empty() || s.front() == '.' || s.back() == '.')
        return false;
    bool alpha = false;
    for (char c : s) {
        if (std::isalnum(static_cast<unsigned char>(c)) != 0 ||
            c == '_' || c == '.' || c == '<' || c == '>') {
            alpha = alpha ||
                    std::isalpha(static_cast<unsigned char>(c)) != 0;
            continue;
        }
        return false;
    }
    return alpha;
}

/** First harvest site per key, smallest (file, line) wins. */
class KeySet
{
  public:
    void
    add(const std::string &key, const std::string &file, int line)
    {
        auto it = keys_.find(key);
        if (it == keys_.end()) {
            keys_.emplace(key, std::make_pair(file, line));
            return;
        }
        if (std::make_pair(file, line) < it->second)
            it->second = {file, line};
    }

    bool has(const std::string &key) const
    {
        return keys_.count(key) > 0;
    }

    const std::map<std::string, std::pair<std::string, int>> &
    all() const
    {
        return keys_;
    }

  private:
    std::map<std::string, std::pair<std::string, int>> keys_;
};

/** Raw contents of the string literal opening at code-view offset
 *  @p quote; true when [quote, argEnd) is exactly one literal plus
 *  whitespace. */
bool
literalAt(const FileContext &file, std::size_t quote,
          std::size_t argEnd, std::string &out)
{
    const std::string &code = file.codeText();
    std::size_t p = quote;
    while (p < argEnd && isSpace(code[p]))
        ++p;
    if (p >= argEnd || code[p] != '"')
        return false;
    const std::size_t close = code.find('"', p + 1);
    if (close == std::string::npos || close >= argEnd)
        return false;
    for (std::size_t i = close + 1; i < argEnd; ++i) {
        if (!isSpace(code[i]))
            return false;
    }
    out = file.rawSlice(p + 1, close);
    return true;
}

/** Harvest `<var> == "literal"` comparisons. */
void
harvestComparisons(const FileContext &file, const std::string &var,
                   const std::string &prefix, KeySet &keys)
{
    const std::string &code = file.codeText();
    for (std::size_t pos = findToken(code, var);
         pos != std::string::npos;
         pos = findToken(code, var, pos + 1)) {
        std::size_t p = pos + var.size();
        while (p < code.size() && isSpace(code[p]))
            ++p;
        if (code.compare(p, 2, "==") != 0)
            continue;
        p += 2;
        while (p < code.size() && isSpace(code[p]))
            ++p;
        if (p >= code.size() || code[p] != '"')
            continue;
        const std::size_t close = code.find('"', p + 1);
        if (close == std::string::npos)
            continue;
        const std::string literal = file.rawSlice(p + 1, close);
        if (keyGrammar(literal))
            keys.add(prefix + literal, file.path(), file.lineOf(pos));
    }
}

/** Harvest dotted string-literal first arguments of PolicyParams
 *  getter calls. */
void
harvestGetters(const FileContext &file, KeySet &keys)
{
    static const char *kGetters[] = {"getDouble", "getInt", "getBool",
                                     "getTick", "has", "raw"};
    const std::string &code = file.codeText();
    for (const char *fn : kGetters) {
        for (std::size_t pos = findCall(code, fn);
             pos != std::string::npos;
             pos = findCall(code, fn, pos + 1)) {
            const std::size_t open = code.find('(', pos);
            const std::size_t end = matchParen(code, open);
            if (end == std::string::npos)
                continue;
            // First top-level argument span.
            std::size_t argEnd = end - 1;
            int depth = 0;
            for (std::size_t i = open + 1; i < end - 1; ++i) {
                const char c = code[i];
                if (c == '(' || c == '[' || c == '{')
                    ++depth;
                else if (c == ')' || c == ']' || c == '}')
                    --depth;
                else if (c == ',' && depth == 0) {
                    argEnd = i;
                    break;
                }
            }
            std::string literal;
            if (!literalAt(file, open + 1, argEnd, literal))
                continue;
            if (literal.find('.') != std::string::npos &&
                keyGrammar(literal))
                keys.add(literal, file.path(), file.lineOf(pos));
        }
    }
}

/** Harvest `<i>`-template literals (families of numbered keys). */
void
harvestTemplates(const FileContext &file, KeySet &keys)
{
    const std::string &code = file.codeText();
    std::size_t p = 0;
    while ((p = code.find('"', p)) != std::string::npos) {
        const std::size_t close = code.find('"', p + 1);
        if (close == std::string::npos)
            break;
        const std::string literal = file.rawSlice(p + 1, close);
        if (keyGrammar(literal) &&
            literal.find("<i>") != std::string::npos &&
            literal.find('.') != std::string::npos)
            keys.add(literal, file.path(),
                     file.lineOf(p));
        p = close + 1;
    }
}

/** Backticked key tokens in the first column of README `| Key |`
 *  tables, with the 1-based line of each row. */
std::map<std::string, int>
docKeys(const std::string &readme)
{
    std::map<std::string, int> keys;
    bool inKeyTable = false;
    int lineNo = 0;
    std::string::size_type start = 0;
    while (start <= readme.size()) {
        std::string::size_type nl = readme.find('\n', start);
        if (nl == std::string::npos)
            nl = readme.size();
        std::string line = readme.substr(start, nl - start);
        ++lineNo;
        start = nl + 1;

        std::size_t first = 0;
        while (first < line.size() && isSpace(line[first]))
            ++first;
        if (first >= line.size() || line[first] != '|') {
            inKeyTable = false;
            continue;
        }
        // First cell: between the leading '|' and the next '|'.
        const std::size_t bar = line.find('|', first + 1);
        std::string cell = line.substr(
            first + 1,
            bar == std::string::npos ? std::string::npos
                                     : bar - first - 1);
        while (!cell.empty() && isSpace(cell.front()))
            cell.erase(cell.begin());
        while (!cell.empty() && isSpace(cell.back()))
            cell.pop_back();
        if (cell == "Key") {
            inKeyTable = true;
            continue;
        }
        if (!inKeyTable)
            continue;
        // Every backticked token in the first cell that parses as a
        // key; separator rows have no backticks and fall through.
        std::size_t p = 0;
        while ((p = cell.find('`', p)) != std::string::npos) {
            const std::size_t close = cell.find('`', p + 1);
            if (close == std::string::npos)
                break;
            const std::string token =
                cell.substr(p + 1, close - p - 1);
            if (keyGrammar(token) && keys.find(token) == keys.end())
                keys.emplace(token, lineNo);
            p = close + 1;
        }
    }
    return keys;
}

class ConfigDocRule : public ProjectRule
{
  public:
    void
    check(const ProjectContext &project, const std::string &id,
          ProjectSink &sink) const override
    {
        std::string readme;
        if (!project.readDoc("README.md", readme))
            return; // partial scans without a README stay quiet

        KeySet code;
        for (const FileContext *file : project.files()) {
            if (!file->under("src/"))
                continue;
            const bool ioFile =
                file->path() == "src/harness/config_io.cc" ||
                file->path() == "src/harness/cluster_io.cc";
            if (ioFile)
                harvestComparisons(*file, "key", "", code);
            if (file->path() == "src/harness/cluster_io.cc")
                harvestComparisons(*file, "rest", "host<i>.", code);
            harvestGetters(*file, code);
            harvestTemplates(*file, code);
        }

        const std::map<std::string, int> docs = docKeys(readme);

        for (const auto &[key, site] : code.all()) {
            if (docs.count(key) > 0)
                continue;
            sink.report(site.first, site.second, id,
                        "config key '" + key +
                            "' is parsed here but missing from the "
                            "README.md key tables");
        }
        for (const auto &[key, line] : docs) {
            if (code.has(key))
                continue;
            sink.report("README.md", line, id,
                        "README.md documents config key '" + key +
                            "' but no code under src/ reads it");
        }
    }
};

std::unique_ptr<ProjectRule>
makeConfigDocRule()
{
    return std::make_unique<ConfigDocRule>();
}

REGISTER_PROJECT_RULE(
    "config-doc-sync", &makeConfigDocRule, "config-doc-ok",
    "every config key the code parses must appear in a README key "
    "table and every documented key must be parsed by the code");

} // namespace

// Anchor for ensureBuiltinRules().
void linkConfigDocRule() {}

} // namespace nmaplint
