/**
 * @file
 * nmaplint core implementation: code-view stripping, token matching,
 * the rule registry, waiver handling and the two-phase driver (the
 * parallel per-file pass, then the serial project pass).
 */

#include "lint.hh"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace nmaplint {

namespace {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Blank comments and literal contents out of @p text. Comment bodies
 * (including the delimiters) become spaces; string and char literals
 * keep their quote characters but their contents become spaces. Raw
 * strings R"delim(...)delim" are handled; newlines always survive so
 * line numbering is unchanged.
 */
std::string
stripToCode(const std::string &text)
{
    std::string out(text.size(), ' ');
    enum class St
    {
        kCode,
        kLineComment,
        kBlockComment,
        kString,
        kChar,
        kRawString,
    };
    St st = St::kCode;
    std::string rawEnd; // ")delim\"" terminator for raw strings
    std::size_t i = 0;
    const std::size_t n = text.size();
    while (i < n) {
        const char c = text[i];
        if (c == '\n') {
            out[i] = '\n';
            if (st == St::kLineComment)
                st = St::kCode;
            ++i;
            continue;
        }
        switch (st) {
        case St::kCode:
            if (c == '/' && i + 1 < n && text[i + 1] == '/') {
                // Keep the delimiter: waiver detection anchors on a
                // real line-comment start in the code view.
                out[i] = '/';
                out[i + 1] = '/';
                st = St::kLineComment;
                i += 2;
            } else if (c == '/' && i + 1 < n && text[i + 1] == '*') {
                st = St::kBlockComment;
                i += 2;
            } else if (c == '"' && i >= 1 && text[i - 1] == 'R' &&
                       (i < 2 || !isIdentChar(text[i - 2]))) {
                // R"delim( ... )delim"
                std::size_t open = text.find('(', i + 1);
                if (open == std::string::npos) {
                    out[i] = c;
                    ++i;
                    break;
                }
                // append(str, pos, n) sidesteps GCC 12's -Wrestrict
                // misfire on string-concatenation chains (PR105651).
                rawEnd.assign(1, ')');
                rawEnd.append(text, i + 1, open - i - 1);
                rawEnd.push_back('"');
                out[i] = '"';
                st = St::kRawString;
                i = open + 1;
            } else if (c == '"') {
                out[i] = '"';
                st = St::kString;
                ++i;
            } else if (c == '\'') {
                out[i] = '\'';
                st = St::kChar;
                ++i;
            } else {
                out[i] = c;
                ++i;
            }
            break;
        case St::kLineComment:
            ++i;
            break;
        case St::kBlockComment:
            if (c == '*' && i + 1 < n && text[i + 1] == '/') {
                st = St::kCode;
                i += 2;
            } else {
                ++i;
            }
            break;
        case St::kString:
            if (c == '\\' && i + 1 < n) {
                i += 2;
            } else if (c == '"') {
                out[i] = '"';
                st = St::kCode;
                ++i;
            } else {
                ++i;
            }
            break;
        case St::kChar:
            if (c == '\\' && i + 1 < n) {
                i += 2;
            } else if (c == '\'') {
                out[i] = '\'';
                st = St::kCode;
                ++i;
            } else {
                ++i;
            }
            break;
        case St::kRawString:
            if (text.compare(i, rawEnd.size(), rawEnd) == 0) {
                i += rawEnd.size();
                out[i - 1] = '"';
                st = St::kCode;
            } else {
                ++i;
            }
            break;
        }
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string::size_type start = 0;
    while (start <= text.size()) {
        std::string::size_type nl = text.find('\n', start);
        if (nl == std::string::npos) {
            lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    return lines;
}

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** A parsed `// lint: token(reason)` waiver comment. */
struct Waiver
{
    bool parsed = false;  //!< syntactically well-formed
    std::string token;
    std::string reason;
};

/**
 * Parse a waiver on 0-based line @p i of @p file. A waiver is a real
 * line comment (block-comment prose and string literals cannot match:
 * only genuine `//` delimiters survive into the code view) whose text
 * starts with `lint:`. Returns false when the line carries no waiver
 * marker; out.parsed reports whether it was well-formed.
 */
bool
findWaiver(const FileContext &file, std::size_t i, Waiver &out)
{
    const std::size_t slash = file.code()[i].find("//");
    if (slash == std::string::npos)
        return false;
    const std::string &rawLine = file.raw()[i];
    std::size_t mark = slash + 2;
    while (mark < rawLine.size() &&
           std::isspace(static_cast<unsigned char>(rawLine[mark])))
        ++mark;
    if (rawLine.compare(mark, 5, "lint:") != 0)
        return false;
    std::size_t p = mark + 5;
    while (p < rawLine.size() &&
           std::isspace(static_cast<unsigned char>(rawLine[p])))
        ++p;
    std::size_t tokStart = p;
    while (p < rawLine.size() &&
           (isIdentChar(rawLine[p]) || rawLine[p] == '-'))
        ++p;
    out.token = rawLine.substr(tokStart, p - tokStart);
    while (p < rawLine.size() &&
           std::isspace(static_cast<unsigned char>(rawLine[p])))
        ++p;
    if (out.token.empty() || p >= rawLine.size() || rawLine[p] != '(') {
        out.parsed = false;
        return true;
    }
    std::size_t close = rawLine.rfind(')');
    if (close == std::string::npos || close <= p) {
        out.parsed = false;
        return true;
    }
    out.reason = trim(rawLine.substr(p + 1, close - p - 1));
    out.parsed = true;
    return true;
}

/** True when 1-based @p line holds no code (blank or comment-only;
 *  a lone surviving `//` delimiter still counts as comment-only). */
bool
commentOnly(const FileContext &file, int line)
{
    if (line < 1 || line > static_cast<int>(file.code().size()))
        return false;
    const std::string t = trim(file.code()[line - 1]);
    return t.empty() || t == "//";
}

/** Well-formed waiver with token @p token on 1-based @p line? */
bool
waiverAt(const FileContext &file, int line, const std::string &token)
{
    if (line < 1 || line > static_cast<int>(file.raw().size()))
        return false;
    Waiver w;
    if (!findWaiver(file, static_cast<std::size_t>(line - 1), w))
        return false;
    return w.parsed && w.token == token && !w.reason.empty();
}

/**
 * First line of the multi-line statement containing 1-based @p line:
 * walk upward while the previous line is a continuation — nonempty
 * code that is not comment-only, not a preprocessor line, and does
 * not end a statement or open/close a scope (`;`, `{`, `}`, `:`).
 * A single-line statement returns @p line itself.
 */
int
statementStart(const FileContext &file, int line)
{
    int start = line;
    while (start > 1) {
        const std::string prev = trim(file.code()[start - 2]);
        if (prev.empty() || prev == "//")
            break;
        if (prev[0] == '#')
            break;
        const char last = prev.back();
        if (last == ';' || last == '{' || last == '}' || last == ':')
            break;
        --start;
    }
    return start;
}

/**
 * 1-based line of the waiver comment suppressing token @p token for a
 * finding on @p line, or 0 when none applies. Acceptance sites, in
 * order: the finding's own line, an immediately preceding comment-only
 * line, and — for findings inside a multi-line statement — the
 * statement's first line (so a waiver can trail the opening line of a
 * wrapped call whose offending argument lands lines later).
 */
int
waiverLineFor(const FileContext &file, int line,
              const std::string &token)
{
    if (waiverAt(file, line, token))
        return line;
    if (commentOnly(file, line - 1) && waiverAt(file, line - 1, token))
        return line - 1;
    const int start = statementStart(file, line);
    if (start < line && waiverAt(file, start, token))
        return start;
    return 0;
}

} // namespace

FileContext::FileContext(std::string relPath, const std::string &text)
    : path_(std::move(relPath))
{
    raw_ = splitLines(text);
    rawText_ = text;
    codeText_ = stripToCode(text);
    code_ = splitLines(codeText_);
    lineStart_.reserve(code_.size());
    std::size_t off = 0;
    for (const std::string &line : code_) {
        lineStart_.push_back(off);
        off += line.size() + 1;
    }
}

int
FileContext::lineOf(std::size_t pos) const
{
    auto it = std::upper_bound(lineStart_.begin(), lineStart_.end(), pos);
    return static_cast<int>(it - lineStart_.begin());
}

bool
FileContext::under(std::string_view prefix) const
{
    return path_.compare(0, prefix.size(), prefix) == 0;
}

bool
FileContext::isHeader() const
{
    auto ends = [this](std::string_view suf) {
        return path_.size() >= suf.size() &&
               path_.compare(path_.size() - suf.size(), suf.size(),
                             suf) == 0;
    };
    return ends(".hh") || ends(".h") || ends(".hpp");
}

std::string
FileContext::rawSlice(std::size_t begin, std::size_t end) const
{
    if (begin >= rawText_.size() || end <= begin)
        return std::string();
    end = std::min(end, rawText_.size());
    return rawText_.substr(begin, end - begin);
}

bool
tokenAt(std::string_view code, std::size_t pos, std::string_view tok)
{
    if (pos + tok.size() > code.size())
        return false;
    if (code.compare(pos, tok.size(), tok) != 0)
        return false;
    if (pos > 0 && isIdentChar(code[pos - 1]))
        return false;
    std::size_t after = pos + tok.size();
    return after >= code.size() || !isIdentChar(code[after]);
}

std::size_t
findToken(std::string_view code, std::string_view tok, std::size_t from)
{
    for (std::size_t pos = code.find(tok, from);
         pos != std::string_view::npos; pos = code.find(tok, pos + 1)) {
        if (tokenAt(code, pos, tok))
            return pos;
    }
    return std::string_view::npos;
}

bool
hasToken(std::string_view code, std::string_view tok)
{
    return findToken(code, tok) != std::string_view::npos;
}

std::size_t
findCall(std::string_view code, std::string_view fn, std::size_t from)
{
    for (std::size_t pos = findToken(code, fn, from);
         pos != std::string_view::npos;
         pos = findToken(code, fn, pos + 1)) {
        std::size_t p = pos + fn.size();
        while (p < code.size() &&
               std::isspace(static_cast<unsigned char>(code[p])))
            ++p;
        if (p < code.size() && code[p] == '(')
            return pos;
    }
    return std::string_view::npos;
}

std::size_t
matchParen(std::string_view code, std::size_t open)
{
    if (open >= code.size() || code[open] != '(')
        return std::string_view::npos;
    int depth = 0;
    for (std::size_t i = open; i < code.size(); ++i) {
        if (code[i] == '(')
            ++depth;
        else if (code[i] == ')' && --depth == 0)
            return i + 1;
    }
    return std::string_view::npos;
}

std::vector<std::string>
splitTopLevelArgs(std::string_view inside)
{
    std::vector<std::string> args;
    int paren = 0, brace = 0, angle = 0, bracket = 0;
    std::string cur;
    for (char c : inside) {
        switch (c) {
        case '(': ++paren; break;
        case ')': --paren; break;
        case '{': ++brace; break;
        case '}': --brace; break;
        case '<': ++angle; break;
        case '>': if (angle > 0) --angle; break;
        case '[': ++bracket; break;
        case ']': --bracket; break;
        default: break;
        }
        if (c == ',' && paren == 0 && brace == 0 && angle == 0 &&
            bracket == 0) {
            args.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!trim(cur).empty() || !args.empty())
        args.push_back(trim(cur));
    return args;
}

std::vector<WaiverInfo>
waiversIn(const FileContext &file)
{
    std::vector<WaiverInfo> out;
    for (std::size_t i = 0; i < file.raw().size(); ++i) {
        Waiver w;
        if (!findWaiver(file, i, w))
            continue;
        out.push_back(WaiverInfo{static_cast<int>(i + 1), w.parsed,
                                 w.token, w.reason});
    }
    return out;
}

LintRuleRegistry &
LintRuleRegistry::instance()
{
    static LintRuleRegistry registry;
    return registry;
}

void
LintRuleRegistry::registerToken(const std::string &id,
                                const std::string &waiverToken)
{
    if (!tokenToRule_.emplace(waiverToken, id).second)
        throw std::logic_error("duplicate waiver token: " + waiverToken);
}

void
LintRuleRegistry::registerRule(const std::string &id, Factory factory,
                               const std::string &waiverToken,
                               const std::string &help)
{
    Entry entry;
    entry.factory = std::move(factory);
    entry.waiverToken = waiverToken;
    entry.help = help;
    if (!rules_.emplace(id, std::move(entry)).second)
        throw std::logic_error("duplicate lint rule: " + id);
    registerToken(id, waiverToken);
}

void
LintRuleRegistry::registerProjectRule(const std::string &id,
                                      ProjectFactory factory,
                                      const std::string &waiverToken,
                                      const std::string &help)
{
    Entry entry;
    entry.projectFactory = std::move(factory);
    entry.waiverToken = waiverToken;
    entry.help = help;
    if (!rules_.emplace(id, std::move(entry)).second)
        throw std::logic_error("duplicate lint rule: " + id);
    registerToken(id, waiverToken);
}

std::vector<LintRuleRegistry::RuleInfo>
LintRuleRegistry::rules() const
{
    std::vector<RuleInfo> out;
    out.reserve(rules_.size());
    for (const auto &[id, entry] : rules_)
        out.push_back(RuleInfo{id, entry.waiverToken, entry.help,
                               static_cast<bool>(entry.projectFactory)});
    return out;
}

std::string
LintRuleRegistry::waiverToken(const std::string &ruleId) const
{
    auto it = rules_.find(ruleId);
    return it == rules_.end() ? std::string() : it->second.waiverToken;
}

std::string
LintRuleRegistry::ruleForToken(const std::string &token) const
{
    auto it = tokenToRule_.find(token);
    return it == tokenToRule_.end() ? std::string() : it->second;
}

std::vector<std::pair<std::string, std::unique_ptr<LintRule>>>
LintRuleRegistry::instantiate() const
{
    std::vector<std::pair<std::string, std::unique_ptr<LintRule>>> out;
    out.reserve(rules_.size());
    for (const auto &[id, entry] : rules_) {
        if (entry.factory)
            out.emplace_back(id, entry.factory());
    }
    return out;
}

std::vector<std::pair<std::string, std::unique_ptr<ProjectRule>>>
LintRuleRegistry::instantiateProject() const
{
    std::vector<std::pair<std::string, std::unique_ptr<ProjectRule>>>
        out;
    for (const auto &[id, entry] : rules_) {
        if (entry.projectFactory && id != "stale-waiver")
            out.emplace_back(id, entry.projectFactory());
    }
    // stale-waiver audits the waiver consumption every other rule's
    // suppression produces, so it must observe a complete record.
    auto it = rules_.find("stale-waiver");
    if (it != rules_.end() && it->second.projectFactory)
        out.emplace_back(it->first, it->second.projectFactory());
    return out;
}

void
lintFile(const FileContext &file, std::vector<Finding> &out,
         std::vector<int> *usedWaiverLines)
{
    const LintRuleRegistry &registry = LintRuleRegistry::instance();

    std::vector<Finding> candidates;
    Sink sink(file, candidates);
    for (const auto &[id, rule] : registry.instantiate()) {
        if (rule->appliesTo(file))
            rule->check(file, id, sink);
    }

    // Apply waivers; record which waiver comments earned their keep
    // (input to the stale-waiver project rule).
    for (Finding &f : candidates) {
        const std::string token = registry.waiverToken(f.rule);
        const int waiverLine =
            token.empty() ? 0 : waiverLineFor(file, f.line, token);
        if (waiverLine == 0) {
            out.push_back(std::move(f));
            continue;
        }
        if (usedWaiverLines != nullptr)
            usedWaiverLines->push_back(waiverLine);
    }

    // Validate every waiver comment in the file: unknown tokens,
    // missing parens and empty reasons are findings themselves.
    for (std::size_t i = 0; i < file.raw().size(); ++i) {
        Waiver w;
        if (!findWaiver(file, i, w))
            continue;
        const int line = static_cast<int>(i + 1);
        if (!w.parsed) {
            out.push_back(Finding{
                file.path(), line, "bad-waiver",
                "malformed waiver comment; expected "
                "`// lint: <token>(<reason>)`"});
        } else if (registry.ruleForToken(w.token).empty()) {
            out.push_back(Finding{file.path(), line, "bad-waiver",
                                  "unknown waiver token '" + w.token +
                                      "' (see --list-rules)"});
        } else if (w.reason.empty()) {
            out.push_back(Finding{
                file.path(), line, "bad-waiver",
                "waiver '" + w.token +
                    "' has an empty reason; every waiver must say why"});
        }
    }
}

namespace {

/** Per-file phase output for one input path, slotted by input index
 *  so the merge below is independent of worker scheduling (the
 *  SweepRunner idiom from src/harness/sweep.cc). */
struct FileResult
{
    std::unique_ptr<FileContext> file; //!< null on read failure
    std::vector<Finding> findings;
    std::vector<int> usedWaiverLines;
};

FileResult
lintOnePath(const std::string &path, const std::string &rootPrefix)
{
    std::string rel = path;
    if (rel.compare(0, rootPrefix.size(), rootPrefix) == 0)
        rel = rel.substr(rootPrefix.size());
    while (rel.compare(0, 2, "./") == 0)
        rel = rel.substr(2);

    FileResult result;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        result.findings.push_back(
            Finding{rel, 0, "io-error", "cannot read file"});
        return result;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    result.file = std::make_unique<FileContext>(rel, ss.str());
    lintFile(*result.file, result.findings, &result.usedWaiverLines);
    return result;
}

} // namespace

std::vector<Finding>
lintPaths(const std::vector<std::string> &files, const std::string &root,
          const LintOptions &options)
{
    ensureBuiltinRules();

    std::string prefix = root;
    if (!prefix.empty() && prefix.back() != '/')
        prefix += '/';

    // Phase 1: per-file rules, embarrassingly parallel. Results are
    // slotted by input index, so the merged finding list — and with it
    // every output format — is byte-identical for any job count.
    std::vector<FileResult> results(files.size());
    const int jobs = std::max(
        1, std::min(options.jobs, static_cast<int>(files.size())));
    if (jobs <= 1) {
        for (std::size_t i = 0; i < files.size(); ++i)
            results[i] = lintOnePath(files[i], prefix);
    } else {
        std::atomic<std::size_t> next{0};
        auto worker = [&]() {
            for (std::size_t i = next.fetch_add(1); i < files.size();
                 i = next.fetch_add(1))
                results[i] = lintOnePath(files[i], prefix);
        };
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(jobs));
        for (int t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    std::vector<Finding> findings;
    for (FileResult &r : results)
        findings.insert(findings.end(),
                        std::make_move_iterator(r.findings.begin()),
                        std::make_move_iterator(r.findings.end()));

    // Phase 2: project rules over the whole loaded tree, serial (the
    // include graph and waiver-usage record are shared state).
    if (options.project) {
        ProjectContext project(root);
        for (FileResult &r : results) {
            if (!r.file)
                continue;
            const std::string &rel = r.file->path();
            for (int line : r.usedWaiverLines)
                project.markWaiverUsed(rel, line);
            project.addFile(std::move(r.file));
        }
        project.finalize();

        const LintRuleRegistry &registry = LintRuleRegistry::instance();
        // stale-waiver is ordered last by instantiateProject(); the
        // waiver consumption of every earlier project rule is folded
        // into the context before it runs.
        for (const auto &[id, rule] : registry.instantiateProject()) {
            std::vector<Finding> candidates;
            ProjectSink sink(candidates);
            rule->check(project, id, sink);
            const std::string token = registry.waiverToken(id);
            for (Finding &f : candidates) {
                const FileContext *ctx = project.file(f.file);
                const int waiverLine =
                    (ctx != nullptr && !token.empty() && f.line > 0)
                        ? waiverLineFor(*ctx, f.line, token)
                        : 0;
                if (waiverLine == 0) {
                    findings.push_back(std::move(f));
                    continue;
                }
                project.markWaiverUsed(f.file, waiverLine);
            }
        }
    }

    std::sort(findings.begin(), findings.end());
    return findings;
}

// Defined in the registering rule TUs; calling them forces the
// registrar statics out of a static archive (same linker dance as
// ensureBuiltinPolicies() in src/harness/policy_registry.cc).
void linkAssertRule();
void linkNondetRule();
void linkUnorderedIterRule();
void linkRawOutputRule();
void linkHeaderHygieneRule();
void linkRegisterHygieneRule();
void linkLayeringRule();
void linkSharedStateRule();
void linkConfigDocRule();
void linkStaleWaiverRule();

void
ensureBuiltinRules()
{
    linkAssertRule();
    linkNondetRule();
    linkUnorderedIterRule();
    linkRawOutputRule();
    linkHeaderHygieneRule();
    linkRegisterHygieneRule();
    linkLayeringRule();
    linkSharedStateRule();
    linkConfigDocRule();
    linkStaleWaiverRule();
}

std::string
waiverComment(const std::string &ruleIdOrToken, const std::string &reason)
{
    const LintRuleRegistry &registry = LintRuleRegistry::instance();
    std::string token = registry.waiverToken(ruleIdOrToken);
    if (token.empty() &&
        !registry.ruleForToken(ruleIdOrToken).empty())
        token = ruleIdOrToken;
    if (token.empty())
        return std::string();
    return "// lint: " + token + "(" + reason + ")";
}

} // namespace nmaplint
